//! Tape-based reverse-mode autograd over 2-D `f32` tensors.
//!
//! The design is define-by-run: a [`Graph`] is built per training step,
//! forward values are computed eagerly, and [`Graph::backward`] replays the
//! tape in reverse. Tensors are row-major `[rows, cols]` matrices; vectors
//! are `[1, n]`.
//!
//! # Kernel layout
//!
//! The matmul family (forward and backward) runs through the kernels in
//! [`kernels`], selected per graph by [`KernelMode`] (see
//! [`Graph::with_kernels`]). The `Blocked` and `Reference` families
//! accumulate each output element in ascending shared-dimension order and
//! are **bit-identical** on finite inputs — see the equivalence property
//! tests. The `Simd` family keeps that order (and hence bit-exactness)
//! for `matmul` and `matmul_tn`, but trades it for per-lane accumulators
//! in `matmul_nt` and the softmax/layer-norm statistics sweeps — still
//! deterministic, no longer bit-identical; every trade is documented on
//! the kernel itself and in DESIGN.md. Softmax, layer norm, and
//! cross-entropy are fused into two sweeps per row (one read-only
//! statistics sweep, one write sweep).

use std::sync::atomic::{AtomicU8, Ordering};

/// A node id on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorId(usize);

/// Row-major matrix storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix from raw parts.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { rows, cols, data }
    }

    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Element access.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

/// Which kernel family the graph ops (and the decode engine) dispatch to.
///
/// `Blocked` (the default) is the cache-friendly production path.
/// `Reference` retains the pre-optimization naive loops (and the
/// selector-matrix row-slice construction) so benchmarks can measure the
/// speedup and property tests can assert exact agreement. Both accumulate
/// in the same per-element order, so **Blocked ≡ Reference bit-for-bit on
/// finite inputs**.
///
/// `Simd` is the explicitly vectorized f32 family: `matmul`/`matmul_tn`
/// keep ascending shared-dim accumulation (still bit-identical to
/// Blocked), while `matmul_nt` and the softmax/layer-norm statistics
/// sweeps use per-lane accumulators — deterministic, but no longer
/// bit-identical; selecting `Simd` is the opt-in for that trade.
///
/// `QuantizedInt8` quantizes the effective weights of a
/// [`DecodeSession`](crate::DecodeSession) to per-row absmax int8 (see
/// [`crate::quant`]); i32 accumulation is associative, so that path is
/// exactly reproducible, and a pass@k-parity test gates it against f32.
/// Outside the decode engine (training graphs), `QuantizedInt8` runs the
/// f32 `Simd` kernels — training weights are never quantized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Blocked, loop-reordered kernels with fused AXPY inner loops.
    #[default]
    Blocked,
    /// The retained naive triple-loop kernels (benchmark baseline).
    Reference,
    /// Vectorized lane-unrolled f32 kernels (exactness trades documented
    /// per kernel).
    Simd,
    /// Int8 weight-quantized decode; f32 `Simd` kernels elsewhere.
    QuantizedInt8,
}

impl KernelMode {
    /// The CLI/JSON name of the family (`reference|blocked|simd|int8`).
    pub fn as_str(self) -> &'static str {
        match self {
            KernelMode::Blocked => "blocked",
            KernelMode::Reference => "reference",
            KernelMode::Simd => "simd",
            KernelMode::QuantizedInt8 => "int8",
        }
    }

    /// Whether graph softmax/layer-norm statistics use the lane-parallel
    /// (reordered, non-bit-identical) sweeps.
    pub(crate) fn lane_sweeps(self) -> bool {
        matches!(self, KernelMode::Simd | KernelMode::QuantizedInt8)
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for KernelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<KernelMode, String> {
        match s {
            "blocked" => Ok(KernelMode::Blocked),
            "reference" => Ok(KernelMode::Reference),
            "simd" => Ok(KernelMode::Simd),
            "int8" | "quantized-int8" => Ok(KernelMode::QuantizedInt8),
            other => {
                Err(format!("unknown kernel mode `{other}` (expected reference|blocked|simd|int8)"))
            }
        }
    }
}

static KERNEL_MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-global *default* kernel family — a thin compat shim.
///
/// Kernel selection is plumbed explicitly ([`Graph::with_kernels`],
/// `TransformerLm::set_kernels`, `TrainConfig::kernel`,
/// `EvalOptions::kernel`, `DecodeSession::new_with`); the global is only
/// consulted as the default by [`Graph::new`] and `TransformerLm::new`,
/// so flipping it mid-process cannot perturb an already-built graph,
/// model, or session.
pub fn set_kernel_mode(mode: KernelMode) {
    let v = match mode {
        KernelMode::Blocked => 0,
        KernelMode::Reference => 1,
        KernelMode::Simd => 2,
        KernelMode::QuantizedInt8 => 3,
    };
    KERNEL_MODE.store(v, Ordering::Relaxed);
}

/// The process-global default kernel family (see [`set_kernel_mode`]).
pub fn kernel_mode() -> KernelMode {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Reference,
        2 => KernelMode::Simd,
        3 => KernelMode::QuantizedInt8,
        _ => KernelMode::Blocked,
    }
}

/// The matmul kernel family.
///
/// Shape conventions (all row-major):
///
/// * [`matmul_into`]: `out[m,n] = a[m,k] · b[k,n]`
/// * [`matmul_nt_into`]: `out[m,n] = a[m,k] · b[n,k]ᵀ`
/// * [`matmul_tn_into`]: `out[m,n] = a[r,m]ᵀ · c[r,n]`
///
/// Each `*_into` dispatches on an explicit [`KernelMode`]; the
/// `*_blocked`, `*_reference`, and `*_simd` variants are public so
/// property tests can compare them directly. The blocked/reference
/// implementations (and the simd `matmul`/`matmul_tn`) accumulate each
/// output element in ascending shared-dimension order and agree
/// bit-for-bit on finite inputs; [`matmul_nt_simd`] documents the one
/// f32-matmul exactness trade.
pub mod kernels {
    use super::{KernelMode, Matrix};

    /// Rows of `b` kept hot per k-tile in the blocked matmul.
    const KC: usize = 64;
    /// Column-tile width (f32 elements) for the blocked matmul/tn kernels.
    const NC: usize = 256;
    /// Rows of `b` reused per tile in the blocked nt kernel.
    const JT: usize = 32;
    /// f32 lanes the simd kernels unroll to (one AVX2 register; a
    /// multiple of the NEON width).
    pub const LANES: usize = 8;

    #[inline]
    fn axpy(out: &mut [f32], x: &[f32], a: f32) {
        for (o, &v) in out.iter_mut().zip(x) {
            *o += a * v;
        }
    }

    /// `out = a · b`, dispatching on the kernel family.
    pub fn matmul_into(mode: KernelMode, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        match mode {
            KernelMode::Blocked => matmul_blocked(a, b, out),
            KernelMode::Reference => matmul_reference(a, b, out),
            KernelMode::Simd | KernelMode::QuantizedInt8 => matmul_simd(a, b, out),
        }
    }

    /// `out = a · bᵀ`, dispatching on the kernel family.
    pub fn matmul_nt_into(mode: KernelMode, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        match mode {
            KernelMode::Blocked => matmul_nt_blocked(a, b, out),
            KernelMode::Reference => matmul_nt_reference(a, b, out),
            KernelMode::Simd | KernelMode::QuantizedInt8 => matmul_nt_simd(a, b, out),
        }
    }

    /// `out = aᵀ · c`, dispatching on the kernel family.
    pub fn matmul_tn_into(mode: KernelMode, a: &Matrix, c: &Matrix, out: &mut Matrix) {
        match mode {
            KernelMode::Blocked => matmul_tn_blocked(a, c, out),
            KernelMode::Reference => matmul_tn_reference(a, c, out),
            KernelMode::Simd | KernelMode::QuantizedInt8 => matmul_tn_simd(a, c, out),
        }
    }

    /// Blocked i-k-j matmul: k-tiles of `b` stay cache-hot across the rows
    /// of `a`, column tiles bound the working set, and the inner loop is a
    /// fused AXPY over a contiguous row slice of `b`.
    pub fn matmul_blocked(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(a.cols, b.rows);
        debug_assert_eq!((out.rows, out.cols), (a.rows, b.cols));
        let (m, k, n) = (a.rows, a.cols, b.cols);
        out.data.fill(0.0);
        for col0 in (0..n).step_by(NC) {
            let cols = NC.min(n - col0);
            for k0 in (0..k).step_by(KC) {
                let kend = (k0 + KC).min(k);
                for i in 0..m {
                    let arow = &a.data[i * k..(i + 1) * k];
                    let orow = &mut out.data[i * n + col0..i * n + col0 + cols];
                    for (kk, &av) in arow.iter().enumerate().take(kend).skip(k0) {
                        let brow = &b.data[kk * n + col0..kk * n + col0 + cols];
                        axpy(orow, brow, av);
                    }
                }
            }
        }
    }

    /// The retained naive matmul (i-k-j with a zero-skip, exactly the
    /// pre-optimization forward kernel).
    pub fn matmul_reference(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(a.cols, b.rows);
        out.data.fill(0.0);
        for i in 0..a.rows {
            for k in 0..a.cols {
                let av = a.data[i * a.cols + k];
                if av == 0.0 {
                    continue;
                }
                let brow = &b.data[k * b.cols..(k + 1) * b.cols];
                let orow = &mut out.data[i * b.cols..(i + 1) * b.cols];
                for (o, &x) in orow.iter_mut().zip(brow) {
                    *o += av * x;
                }
            }
        }
    }

    /// Blocked `a · bᵀ`: a tile of `b` rows is reused across every row of
    /// `a`, and four dot products run at once so each `a` row is loaded
    /// once per four `b` rows.
    pub fn matmul_nt_blocked(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(a.cols, b.cols);
        debug_assert_eq!((out.rows, out.cols), (a.rows, b.rows));
        let (m, k, n) = (a.rows, a.cols, b.rows);
        for j0 in (0..n).step_by(JT) {
            let jend = (j0 + JT).min(n);
            for i in 0..m {
                let arow = &a.data[i * k..(i + 1) * k];
                let orow = &mut out.data[i * n..(i + 1) * n];
                let mut j = j0;
                while j + 4 <= jend {
                    let b0 = &b.data[j * k..(j + 1) * k];
                    let b1 = &b.data[(j + 1) * k..(j + 2) * k];
                    let b2 = &b.data[(j + 2) * k..(j + 3) * k];
                    let b3 = &b.data[(j + 3) * k..(j + 4) * k];
                    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                    for kk in 0..k {
                        let av = arow[kk];
                        s0 += av * b0[kk];
                        s1 += av * b1[kk];
                        s2 += av * b2[kk];
                        s3 += av * b3[kk];
                    }
                    orow[j] = s0;
                    orow[j + 1] = s1;
                    orow[j + 2] = s2;
                    orow[j + 3] = s3;
                    j += 4;
                }
                while j < jend {
                    let brow = &b.data[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += arow[kk] * brow[kk];
                    }
                    orow[j] = acc;
                    j += 1;
                }
            }
        }
    }

    /// The retained naive `a · bᵀ` (i-j-k dot products, the pre-optimization
    /// kernel).
    pub fn matmul_nt_reference(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(a.cols, b.cols);
        let (m, k, n) = (a.rows, a.cols, b.rows);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.data[i * k + kk] * b.data[j * k + kk];
                }
                out.data[i * n + j] = acc;
            }
        }
    }

    /// Blocked `aᵀ · c`: `out[j, :] += a[r, j] * c[r, :]` with the `r` loop
    /// outermost, so both operands stream contiguously and the inner loop
    /// is a fused AXPY; column tiles bound the `out` working set.
    pub fn matmul_tn_blocked(a: &Matrix, c: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(a.rows, c.rows);
        debug_assert_eq!((out.rows, out.cols), (a.cols, c.cols));
        let (r_rows, m, n) = (a.rows, a.cols, c.cols);
        out.data.fill(0.0);
        for col0 in (0..n).step_by(NC) {
            let cols = NC.min(n - col0);
            for r in 0..r_rows {
                let arow = &a.data[r * m..(r + 1) * m];
                let crow = &c.data[r * n + col0..r * n + col0 + cols];
                for (j, &av) in arow.iter().enumerate() {
                    let orow = &mut out.data[j * n + col0..j * n + col0 + cols];
                    axpy(orow, crow, av);
                }
            }
        }
    }

    /// The retained naive `aᵀ · c` (j-c-r dot products over strided
    /// columns, the pre-optimization backward kernel).
    pub fn matmul_tn_reference(a: &Matrix, c: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(a.rows, c.rows);
        let (r_rows, m, n) = (a.rows, a.cols, c.cols);
        for j in 0..m {
            for col in 0..n {
                let mut acc = 0.0f32;
                for r in 0..r_rows {
                    acc += a.data[r * m + j] * c.data[r * n + col];
                }
                out.data[j * n + col] = acc;
            }
        }
    }

    // ---- simd family ----
    //
    // "Simd" here means loops shaped so the autovectorizer emits packed
    // f32 arithmetic on stable Rust (no std::simd): contiguous unit-stride
    // inner loops, LANES-wide unrolls, and — where a sequential f32
    // reduction would forbid vectorization outright — per-lane
    // accumulators. Each kernel states whether it preserves the ascending
    // shared-dim accumulation order the bit-exactness pins rely on.

    /// Register-tile width of the vectorized matmuls: 32 f32 lanes, i.e.
    /// eight SSE (or four AVX) vectors of accumulators that live entirely
    /// in registers across the shared-dim loop.
    const RT: usize = 32;

    /// Vectorized i-k-j matmul, **bit-identical** to [`matmul_blocked`].
    ///
    /// Register-tiled: for each output row a 32-wide block of output
    /// elements is accumulated in a `[f32; RT]` that the compiler keeps in
    /// vector registers across the *entire* k loop, so `out` is stored
    /// exactly once per element instead of once per k step. Per-element
    /// accumulation is still one chained sum in ascending-k order — the
    /// same f32 operation sequence as the blocked kernel — while the 32
    /// independent element chains hide FP-add latency. The fixed-size
    /// `[f32; RT]` rows are what the autovectorizer turns into packed
    /// multiply-adds; a dynamic-width epilogue covers `n % RT` columns.
    pub fn matmul_simd(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(a.cols, b.rows);
        debug_assert_eq!((out.rows, out.cols), (a.rows, b.cols));
        let (m, k, n) = (a.rows, a.cols, b.cols);
        // Narrow-output path (n ≤ RT/2, e.g. the per-head [T,T]·[T,dₕ]
        // attention backward): a single n-wide accumulator row leaves most
        // lanes idle, so tile 4 *output rows* instead — 4·n lanes live,
        // four independent chains per column, still ascending-k per
        // element.
        if n <= RT / 2 {
            const NB: usize = RT / 2;
            let mut i = 0;
            while i + 4 <= m {
                let a0 = &a.data[i * k..(i + 1) * k];
                let a1 = &a.data[(i + 1) * k..(i + 2) * k];
                let a2 = &a.data[(i + 2) * k..(i + 3) * k];
                let a3 = &a.data[(i + 3) * k..(i + 4) * k];
                let mut t0 = [0.0f32; NB];
                let mut t1 = [0.0f32; NB];
                let mut t2 = [0.0f32; NB];
                let mut t3 = [0.0f32; NB];
                for kk in 0..k {
                    let brow = &b.data[kk * n..(kk + 1) * n];
                    for (t, &x) in t0[..n].iter_mut().zip(brow) {
                        *t += a0[kk] * x;
                    }
                    for (t, &x) in t1[..n].iter_mut().zip(brow) {
                        *t += a1[kk] * x;
                    }
                    for (t, &x) in t2[..n].iter_mut().zip(brow) {
                        *t += a2[kk] * x;
                    }
                    for (t, &x) in t3[..n].iter_mut().zip(brow) {
                        *t += a3[kk] * x;
                    }
                }
                out.data[i * n..(i + 1) * n].copy_from_slice(&t0[..n]);
                out.data[(i + 1) * n..(i + 2) * n].copy_from_slice(&t1[..n]);
                out.data[(i + 2) * n..(i + 3) * n].copy_from_slice(&t2[..n]);
                out.data[(i + 3) * n..(i + 4) * n].copy_from_slice(&t3[..n]);
                i += 4;
            }
            while i < m {
                let arow = &a.data[i * k..(i + 1) * k];
                let mut acc = [0.0f32; NB];
                for (kk, &av) in arow.iter().enumerate() {
                    for (t, &x) in acc[..n].iter_mut().zip(&b.data[kk * n..(kk + 1) * n]) {
                        *t += av * x;
                    }
                }
                out.data[i * n..(i + 1) * n].copy_from_slice(&acc[..n]);
                i += 1;
            }
            return;
        }
        for j0 in (0..n).step_by(RT) {
            if j0 + RT <= n {
                for i in 0..m {
                    let arow = &a.data[i * k..(i + 1) * k];
                    let mut acc = [0.0f32; RT];
                    for (kk, &av) in arow.iter().enumerate() {
                        let brow: &[f32; RT] =
                            b.data[kk * n + j0..kk * n + j0 + RT].try_into().unwrap();
                        for (t, &x) in acc.iter_mut().zip(brow) {
                            *t += av * x;
                        }
                    }
                    out.data[i * n + j0..i * n + j0 + RT].copy_from_slice(&acc);
                }
            } else {
                let w = n - j0;
                for i in 0..m {
                    let arow = &a.data[i * k..(i + 1) * k];
                    let mut acc = [0.0f32; RT];
                    for (kk, &av) in arow.iter().enumerate() {
                        let brow = &b.data[kk * n + j0..kk * n + j0 + w];
                        for (t, &x) in acc[..w].iter_mut().zip(brow) {
                            *t += av * x;
                        }
                    }
                    out.data[i * n + j0..i * n + j0 + w].copy_from_slice(&acc[..w]);
                }
            }
        }
    }

    /// Vectorized `a · bᵀ` — deterministic but **not** bit-identical to
    /// [`matmul_nt_blocked`].
    ///
    /// Each dot product accumulates into [`LANES`] independent per-lane
    /// partials over the shared dimension ([`dot_lanes`]), reduced in a
    /// fixed tree order. A single-accumulator f32 dot cannot be
    /// vectorized at all (f32 addition is non-associative), so this is
    /// the one f32 matmul where `Simd` trades bit-exactness for speed;
    /// selecting [`KernelMode::Simd`] is the opt-in. Used for attention
    /// scores and the dA backward of `matmul` (including the vocab-wide
    /// logits dA, the dominant backward cost).
    pub fn matmul_nt_simd(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(a.cols, b.cols);
        debug_assert_eq!((out.rows, out.cols), (a.rows, b.rows));
        let (m, k, n) = (a.rows, a.cols, b.rows);
        for j0 in (0..n).step_by(JT) {
            let jend = (j0 + JT).min(n);
            for i in 0..m {
                let arow = &a.data[i * k..(i + 1) * k];
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (j, o) in orow.iter_mut().enumerate().take(jend).skip(j0) {
                    *o = dot_lanes(arow, &b.data[j * k..(j + 1) * k]);
                }
            }
        }
    }

    /// Lane-split f32 dot product with a fixed reduction tree.
    /// Deterministic; reordered relative to a sequential dot.
    #[inline]
    pub fn dot_lanes(x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len());
        let split = x.len() - x.len() % LANES;
        let mut lanes = [0.0f32; LANES];
        for (xs, ys) in x[..split].chunks_exact(LANES).zip(y[..split].chunks_exact(LANES)) {
            for l in 0..LANES {
                lanes[l] += xs[l] * ys[l];
            }
        }
        let mut tail = 0.0f32;
        for (xv, yv) in x[split..].iter().zip(&y[split..]) {
            tail += xv * yv;
        }
        ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
            + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]))
            + tail
    }

    /// Vectorized `aᵀ · c`, **bit-identical** to [`matmul_tn_blocked`].
    ///
    /// Register-tiled like [`matmul_simd`]: each output row `j` of `aᵀc`
    /// accumulates a 32-wide column block in a `[f32; RT]` held in vector
    /// registers across the whole r loop, with the scalar `a[r][j]`
    /// broadcast against a contiguous strip of `c`'s row r. Per-element
    /// accumulation order stays ascending-r — the same chained f32 sum the
    /// blocked kernel produces — and the 32-column strip of `c` walked by
    /// the r loop fits L1, so it is reused across all `m` output rows.
    pub fn matmul_tn_simd(a: &Matrix, c: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(a.rows, c.rows);
        debug_assert_eq!((out.rows, out.cols), (a.cols, c.cols));
        let (r_rows, m, n) = (a.rows, a.cols, c.cols);
        // Transpose `a` once so the hot r loop reads a[·][j] contiguously
        // instead of striding by m per step. O(r·m) against the
        // O(r·m·n) multiply, and the accumulation order is untouched.
        let mut at = vec![0.0f32; r_rows * m];
        for r in 0..r_rows {
            for j in 0..m {
                at[j * r_rows + r] = a.data[r * m + j];
            }
        }
        // Narrow-output path, mirroring `matmul_simd`: tile 4 output rows
        // so 4·n accumulator lanes stay live; ascending-r per element.
        if n <= RT / 2 {
            const NB: usize = RT / 2;
            let mut j = 0;
            while j + 4 <= m {
                let a0 = &at[j * r_rows..(j + 1) * r_rows];
                let a1 = &at[(j + 1) * r_rows..(j + 2) * r_rows];
                let a2 = &at[(j + 2) * r_rows..(j + 3) * r_rows];
                let a3 = &at[(j + 3) * r_rows..(j + 4) * r_rows];
                let mut t0 = [0.0f32; NB];
                let mut t1 = [0.0f32; NB];
                let mut t2 = [0.0f32; NB];
                let mut t3 = [0.0f32; NB];
                for r in 0..r_rows {
                    let crow = &c.data[r * n..(r + 1) * n];
                    for (t, &x) in t0[..n].iter_mut().zip(crow) {
                        *t += a0[r] * x;
                    }
                    for (t, &x) in t1[..n].iter_mut().zip(crow) {
                        *t += a1[r] * x;
                    }
                    for (t, &x) in t2[..n].iter_mut().zip(crow) {
                        *t += a2[r] * x;
                    }
                    for (t, &x) in t3[..n].iter_mut().zip(crow) {
                        *t += a3[r] * x;
                    }
                }
                out.data[j * n..(j + 1) * n].copy_from_slice(&t0[..n]);
                out.data[(j + 1) * n..(j + 2) * n].copy_from_slice(&t1[..n]);
                out.data[(j + 2) * n..(j + 3) * n].copy_from_slice(&t2[..n]);
                out.data[(j + 3) * n..(j + 4) * n].copy_from_slice(&t3[..n]);
                j += 4;
            }
            while j < m {
                let arow = &at[j * r_rows..(j + 1) * r_rows];
                let mut acc = [0.0f32; NB];
                for (r, &av) in arow.iter().enumerate() {
                    for (t, &x) in acc[..n].iter_mut().zip(&c.data[r * n..(r + 1) * n]) {
                        *t += av * x;
                    }
                }
                out.data[j * n..(j + 1) * n].copy_from_slice(&acc[..n]);
                j += 1;
            }
            return;
        }
        for col0 in (0..n).step_by(RT) {
            if col0 + RT <= n {
                for j in 0..m {
                    let arow = &at[j * r_rows..(j + 1) * r_rows];
                    let mut acc = [0.0f32; RT];
                    for (r, &av) in arow.iter().enumerate() {
                        let crow: &[f32; RT] =
                            c.data[r * n + col0..r * n + col0 + RT].try_into().unwrap();
                        for (t, &x) in acc.iter_mut().zip(crow) {
                            *t += av * x;
                        }
                    }
                    out.data[j * n + col0..j * n + col0 + RT].copy_from_slice(&acc);
                }
            } else {
                let w = n - col0;
                for j in 0..m {
                    let arow = &at[j * r_rows..(j + 1) * r_rows];
                    let mut acc = [0.0f32; RT];
                    for (r, &av) in arow.iter().enumerate() {
                        let crow = &c.data[r * n + col0..r * n + col0 + w];
                        for (t, &x) in acc[..w].iter_mut().zip(crow) {
                            *t += av * x;
                        }
                    }
                    out.data[j * n + col0..j * n + col0 + w].copy_from_slice(&acc[..w]);
                }
            }
        }
    }

    // ---- lane-parallel row sweeps (Simd/int8 graph modes) ----

    /// Lane-parallel fused sum + sum-of-squares of a row (the layer-norm
    /// statistics sweep). Lane-splitting reorders the f32 additions:
    /// deterministic, not bit-identical to the scalar sweep.
    pub fn lane_sum_sumsq(row: &[f32]) -> (f32, f32) {
        let split = row.len() - row.len() % LANES;
        let mut s = [0.0f32; LANES];
        let mut q = [0.0f32; LANES];
        for ch in row[..split].chunks_exact(LANES) {
            for l in 0..LANES {
                s[l] += ch[l];
                q[l] += ch[l] * ch[l];
            }
        }
        let mut sum = ((s[0] + s[4]) + (s[2] + s[6])) + ((s[1] + s[5]) + (s[3] + s[7]));
        let mut sumsq = ((q[0] + q[4]) + (q[2] + q[6])) + ((q[1] + q[5]) + (q[3] + q[7]));
        for &x in &row[split..] {
            sum += x;
            sumsq += x * x;
        }
        (sum, sumsq)
    }

    /// Lane-parallel row max. f32 max is order-independent on non-NaN
    /// inputs, so this matches a sequential max exactly.
    fn lane_max(row: &[f32]) -> f32 {
        let split = row.len() - row.len() % LANES;
        let mut m = [f32::NEG_INFINITY; LANES];
        for ch in row[..split].chunks_exact(LANES) {
            for l in 0..LANES {
                m[l] = m[l].max(ch[l]);
            }
        }
        let mut best = m.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        for &x in &row[split..] {
            best = best.max(x);
        }
        best
    }

    /// Vectorizable `exp`: Cephes-style range reduction (`x = n·ln2 + r`)
    /// and a degree-5 polynomial in `r`, built only from mul/add/clamp/
    /// convert so the autovectorizer emits packed code where a libm
    /// `exp` call would serialize the whole loop. Rounding to the nearest
    /// `n` uses the `1.5 · 2²³` magic-constant trick (two adds) because
    /// `f32::round` is also a libm call on baseline x86-64.
    ///
    /// Max relative error ≈ 2 ulp over the clamped domain `[-87, 88]`.
    /// Deterministic — a pure function of the input bits — but *not*
    /// bit-identical to libm `exp`; only the lane-sweep (Simd/int8)
    /// families opt in, and the decode path never calls it.
    #[inline]
    pub fn exp_approx(x: f32) -> f32 {
        const LOG2E: f32 = std::f32::consts::LOG2_E;
        const LN2_HI: f32 = 0.693_359_4;
        const LN2_LO: f32 = -2.121_944_4e-4;
        const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23
        let x = x.clamp(-87.0, 88.0);
        let n = (x * LOG2E + MAGIC) - MAGIC;
        let r = x - n * LN2_HI - n * LN2_LO;
        let p = 1.987_569_1e-4f32;
        let p = p * r + 1.398_2e-3;
        let p = p * r + 8.333_452e-3;
        let p = p * r + 4.166_579_6e-2;
        let p = p * r + 1.666_666_5e-1;
        let p = p * r + 5.000_000_3e-1;
        let p = p * (r * r) + r + 1.0;
        let scale = f32::from_bits((((n as i32) + 127) << 23) as u32);
        p * scale
    }

    /// Vectorizable `tanh` on top of [`exp_approx`]:
    /// `tanh(x) = (e²ˣ − 1) / (e²ˣ + 1)`. The division is a packed
    /// `divps`; saturation falls out of `exp_approx`'s domain clamp.
    #[inline]
    pub fn tanh_approx(x: f32) -> f32 {
        let e = exp_approx(2.0 * x);
        (e - 1.0) / (e + 1.0)
    }

    /// Two-pass vectorized row softmax: exact lane max, then one fused
    /// sweep that writes `exp_approx(x − max)` back while lane-splitting
    /// the denominator sum (reordered *and* polynomial-exp — deterministic,
    /// not bit-identical to [`softmax_row_inplace`](super::softmax_row_inplace)'s
    /// online libm normalizer), then a scale sweep.
    pub fn softmax_row_inplace_lanes(row: &mut [f32]) {
        let max = lane_max(row);
        let split = row.len() - row.len() % LANES;
        let mut lanes = [0.0f32; LANES];
        for ch in row[..split].chunks_exact_mut(LANES) {
            for l in 0..LANES {
                let e = exp_approx(ch[l] - max);
                ch[l] = e;
                lanes[l] += e;
            }
        }
        let mut denom = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
            + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
        for x in &mut row[split..] {
            let e = exp_approx(*x - max);
            *x = e;
            denom += e;
        }
        let inv = 1.0 / denom;
        for x in row.iter_mut() {
            *x *= inv;
        }
    }
}

enum Op {
    Leaf,
    /// (a, b): C = A · B
    MatMul(TensorId, TensorId),
    /// (a, b): C = A · Bᵀ
    MatMulNt(TensorId, TensorId),
    Add(TensorId, TensorId),
    /// Adds a `[1, n]` row vector to every row.
    AddRow(TensorId, TensorId),
    Mul(TensorId, TensorId),
    Scale(TensorId, f32),
    Gelu(TensorId),
    /// Row-wise layer norm; caches (mean, rstd) per row.
    LayerNorm(TensorId, Vec<(f32, f32)>),
    /// Row-wise softmax with optional causal mask (applied in forward).
    Softmax(TensorId),
    /// Embedding gather: rows of `table` selected by `ids`.
    Gather(TensorId, Vec<usize>),
    /// Column slice [start, len) of the input.
    SliceCols(TensorId, usize, usize),
    /// First `rows` rows of the input.
    SliceRows(TensorId, usize),
    /// Horizontal concatenation of column blocks.
    ConcatCols(Vec<TensorId>),
    /// Weighted token cross-entropy; caches softmax probs.
    CrossEntropy {
        logits: TensorId,
        targets: Vec<usize>,
        weights: Vec<f32>,
        probs: Box<Matrix>,
    },
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
    needs_grad: bool,
}

/// A single-use computation graph.
pub struct Graph {
    nodes: Vec<Node>,
    kernels: KernelMode,
}

impl Default for Graph {
    fn default() -> Graph {
        Graph::new()
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.nodes.len())
            .field("kernels", &self.kernels)
            .finish()
    }
}

/// Online (single-pass) max and exp-sum of a row: the streaming softmax
/// normalizer. Returns `(max, denom)` with `denom = Σ exp(x - max)`.
pub(crate) fn online_max_expsum(row: &[f32]) -> (f32, f32) {
    let mut max = f32::NEG_INFINITY;
    let mut denom = 0.0f32;
    for &x in row {
        if x > max {
            denom = denom * (max - x).exp() + 1.0;
            max = x;
        } else {
            denom += (x - max).exp();
        }
    }
    (max, denom)
}

/// Fused in-place row softmax: one read-only [`online_max_expsum`] sweep,
/// one write sweep fusing the exponential with the reciprocal scale.
///
/// This is the **single** softmax implementation shared by the graph op
/// ([`Graph::softmax`]) and the KV-cached decode path
/// (`pyranet_model::decode`), so the two can never drift apart — they are
/// bit-identical by construction, and the shared unit test pins the
/// numerics.
pub fn softmax_row_inplace(row: &mut [f32]) {
    let (max, denom) = online_max_expsum(row);
    let inv = 1.0 / denom;
    for x in row.iter_mut() {
        *x = (*x - max).exp() * inv;
    }
}

impl Graph {
    /// Creates an empty graph using the process-global default kernel
    /// family (the [`set_kernel_mode`] compat shim). New code should
    /// prefer [`Graph::with_kernels`].
    pub fn new() -> Graph {
        Graph::with_kernels(kernel_mode())
    }

    /// Creates an empty graph whose ops dispatch to `mode`'s kernels.
    pub fn with_kernels(mode: KernelMode) -> Graph {
        Graph { nodes: Vec::new(), kernels: mode }
    }

    /// The kernel family this graph dispatches to.
    pub fn kernels(&self) -> KernelMode {
        self.kernels
    }

    fn push(&mut self, value: Matrix, op: Op, needs_grad: bool) -> TensorId {
        self.nodes.push(Node { value, grad: None, op, needs_grad });
        TensorId(self.nodes.len() - 1)
    }

    /// Adds a trainable leaf (gradient will be accumulated).
    pub fn param(&mut self, value: Matrix) -> TensorId {
        self.push(value, Op::Leaf, true)
    }

    /// Adds a constant leaf (no gradient).
    pub fn constant(&mut self, value: Matrix) -> TensorId {
        self.push(value, Op::Leaf, false)
    }

    /// The forward value of a node.
    pub fn value(&self, id: TensorId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// The accumulated gradient of a node (zero matrix if it never received
    /// gradient).
    pub fn grad(&self, id: TensorId) -> Matrix {
        let n = &self.nodes[id.0];
        n.grad.clone().unwrap_or_else(|| Matrix::zeros(n.value.rows, n.value.cols))
    }

    fn shape(&self, id: TensorId) -> (usize, usize) {
        let v = &self.nodes[id.0].value;
        (v.rows, v.cols)
    }

    fn needs(&self, id: TensorId) -> bool {
        self.nodes[id.0].needs_grad
    }

    // ---- ops ----

    /// `A · B`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ac, br, "matmul inner dims {ac} vs {br}");
        let mut out = Matrix::zeros(ar, bc);
        {
            let av = &self.nodes[a.0].value;
            let bv = &self.nodes[b.0].value;
            kernels::matmul_into(self.kernels, av, bv, &mut out);
        }
        let needs = self.needs(a) || self.needs(b);
        self.push(out, Op::MatMul(a, b), needs)
    }

    /// `A · Bᵀ`.
    pub fn matmul_nt(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ac, bc, "matmul_nt inner dims {ac} vs {bc}");
        let mut out = Matrix::zeros(ar, br);
        {
            let av = &self.nodes[a.0].value;
            let bv = &self.nodes[b.0].value;
            kernels::matmul_nt_into(self.kernels, av, bv, &mut out);
        }
        let needs = self.needs(a) || self.needs(b);
        self.push(out, Op::MatMulNt(a, b), needs)
    }

    /// Elementwise sum (same shape).
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        assert_eq!(self.shape(a), self.shape(b), "add shape mismatch");
        let mut out = self.nodes[a.0].value.clone();
        for (o, x) in out.data.iter_mut().zip(&self.nodes[b.0].value.data) {
            *o += x;
        }
        let needs = self.needs(a) || self.needs(b);
        self.push(out, Op::Add(a, b), needs)
    }

    /// Adds row vector `row` (`[1, n]`) to every row of `a` (`[m, n]`).
    pub fn add_row(&mut self, a: TensorId, row: TensorId) -> TensorId {
        let (_, ac) = self.shape(a);
        let (rr, rc) = self.shape(row);
        assert_eq!((rr, rc), (1, ac), "add_row expects [1,{ac}], got [{rr},{rc}]");
        let mut out = self.nodes[a.0].value.clone();
        let rv = &self.nodes[row.0].value;
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += rv.data[c];
            }
        }
        let needs = self.needs(a) || self.needs(row);
        self.push(out, Op::AddRow(a, row), needs)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        assert_eq!(self.shape(a), self.shape(b), "mul shape mismatch");
        let mut out = self.nodes[a.0].value.clone();
        for (o, x) in out.data.iter_mut().zip(&self.nodes[b.0].value.data) {
            *o *= x;
        }
        let needs = self.needs(a) || self.needs(b);
        self.push(out, Op::Mul(a, b), needs)
    }

    /// Scalar multiply.
    pub fn scale(&mut self, a: TensorId, k: f32) -> TensorId {
        let mut out = self.nodes[a.0].value.clone();
        for o in out.data.iter_mut() {
            *o *= k;
        }
        let needs = self.needs(a);
        self.push(out, Op::Scale(a, k), needs)
    }

    /// GELU activation (tanh approximation). The lane-sweep families
    /// (Simd/int8) evaluate the inner tanh with the vectorizable
    /// [`kernels::tanh_approx`] instead of libm — the same ≈2-ulp,
    /// deterministic trade as their softmax sweeps.
    pub fn gelu(&mut self, a: TensorId) -> TensorId {
        let mut out = self.nodes[a.0].value.clone();
        if self.kernels.lane_sweeps() {
            for o in out.data.iter_mut() {
                *o = gelu_fwd_fast(*o);
            }
        } else {
            for o in out.data.iter_mut() {
                *o = gelu_fwd(*o);
            }
        }
        let needs = self.needs(a);
        self.push(out, Op::Gelu(a), needs)
    }

    /// Row-wise layer normalization (no affine; compose with `mul`/`add_row`
    /// for gain/bias). One statistics sweep (sum + sum-of-squares fused)
    /// and one write sweep per row. In the Simd/int8 kernel families the
    /// statistics sweep is the lane-parallel
    /// [`kernels::lane_sum_sumsq`] (deterministic, not bit-identical to
    /// the scalar sweep).
    pub fn layernorm(&mut self, a: TensorId) -> TensorId {
        let lane_sweeps = self.kernels.lane_sweeps();
        let v = &self.nodes[a.0].value;
        let mut out = Matrix::zeros(v.rows, v.cols);
        let mut stats = Vec::with_capacity(v.rows);
        let n = v.cols as f32;
        for r in 0..v.rows {
            let row = &v.data[r * v.cols..(r + 1) * v.cols];
            let (sum, sumsq) = if lane_sweeps {
                kernels::lane_sum_sumsq(row)
            } else {
                let (mut sum, mut sumsq) = (0.0f32, 0.0f32);
                for &x in row {
                    sum += x;
                    sumsq += x * x;
                }
                (sum, sumsq)
            };
            let mean = sum / n;
            let var = (sumsq / n - mean * mean).max(0.0);
            let rstd = 1.0 / (var + 1e-5).sqrt();
            for (o, &x) in out.data[r * v.cols..(r + 1) * v.cols].iter_mut().zip(row) {
                *o = (x - mean) * rstd;
            }
            stats.push((mean, rstd));
        }
        let needs = self.needs(a);
        self.push(out, Op::LayerNorm(a, stats), needs)
    }

    /// Row-wise softmax. `causal` masks column j > row i with -inf first
    /// (for square attention score matrices). Uses the online normalizer:
    /// one read-only sweep for (max, denom), one write sweep fusing the
    /// exponential with the reciprocal scale.
    pub fn softmax(&mut self, a: TensorId, causal: bool) -> TensorId {
        let lane_sweeps = self.kernels.lane_sweeps();
        let v = &self.nodes[a.0].value;
        let mut out = Matrix::zeros(v.rows, v.cols);
        for r in 0..v.rows {
            let limit = if causal { (r + 1).min(v.cols) } else { v.cols };
            let dst = &mut out.data[r * v.cols..r * v.cols + limit];
            dst.copy_from_slice(&v.data[r * v.cols..r * v.cols + limit]);
            if lane_sweeps {
                kernels::softmax_row_inplace_lanes(dst);
            } else {
                softmax_row_inplace(dst);
            }
            // masked entries stay exactly 0
        }
        let needs = self.needs(a);
        self.push(out, Op::Softmax(a), needs)
    }

    /// Gathers rows `ids` of `table` (embedding lookup).
    pub fn gather(&mut self, table: TensorId, ids: &[usize]) -> TensorId {
        let t = &self.nodes[table.0].value;
        let mut out = Matrix::zeros(ids.len(), t.cols);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < t.rows, "gather index {id} out of {}", t.rows);
            out.data[r * t.cols..(r + 1) * t.cols]
                .copy_from_slice(&t.data[id * t.cols..(id + 1) * t.cols]);
        }
        let needs = self.needs(table);
        self.push(out, Op::Gather(table, ids.to_vec()), needs)
    }

    /// Column slice `[start, start+len)`.
    pub fn slice_cols(&mut self, a: TensorId, start: usize, len: usize) -> TensorId {
        let v = &self.nodes[a.0].value;
        assert!(start + len <= v.cols, "slice beyond columns");
        let mut out = Matrix::zeros(v.rows, len);
        for r in 0..v.rows {
            out.data[r * len..(r + 1) * len]
                .copy_from_slice(&v.data[r * v.cols + start..r * v.cols + start + len]);
        }
        let needs = self.needs(a);
        self.push(out, Op::SliceCols(a, start, len), needs)
    }

    /// First `rows` rows of `a` (used to drop the final next-token row
    /// before the loss).
    ///
    /// In [`KernelMode::Reference`] this builds the historical selector
    /// matrix `S[rows, n]` with `S[i,i] = 1` and multiplies — the
    /// pre-optimization construction, whose backward pass is an
    /// `O(n · rows · cols)` dense matmul. The blocked mode records a
    /// dedicated O(rows · cols) copy/scatter op instead; both produce
    /// bit-identical values and gradients.
    ///
    /// # Panics
    ///
    /// Panics when `rows` exceeds the row count of `a`.
    pub fn slice_rows(&mut self, a: TensorId, rows: usize) -> TensorId {
        let v = &self.nodes[a.0].value;
        assert!(rows <= v.rows, "slice beyond rows");
        if rows == v.rows {
            return a;
        }
        if self.kernels == KernelMode::Reference {
            let n = v.rows;
            let mut sel = Matrix::zeros(rows, n);
            for i in 0..rows {
                sel.data[i * n + i] = 1.0;
            }
            let s = self.constant(sel);
            return self.matmul(s, a);
        }
        let cols = v.cols;
        let mut out = Matrix::zeros(rows, cols);
        out.data.copy_from_slice(&v.data[..rows * cols]);
        let needs = self.needs(a);
        self.push(out, Op::SliceRows(a, rows), needs)
    }

    /// Concatenates blocks horizontally (same row count).
    pub fn concat_cols(&mut self, parts: &[TensorId]) -> TensorId {
        assert!(!parts.is_empty());
        let rows = self.shape(parts[0]).0;
        let total: usize = parts.iter().map(|p| self.shape(*p).1).sum();
        let mut out = Matrix::zeros(rows, total);
        let mut off = 0;
        for &p in parts {
            let v = &self.nodes[p.0].value;
            assert_eq!(v.rows, rows, "concat_cols row mismatch");
            for r in 0..rows {
                out.data[r * total + off..r * total + off + v.cols]
                    .copy_from_slice(&v.data[r * v.cols..(r + 1) * v.cols]);
            }
            off += v.cols;
        }
        let needs = parts.iter().any(|p| self.needs(*p));
        self.push(out, Op::ConcatCols(parts.to_vec()), needs)
    }

    /// Per-row weighted cross-entropy over logits `[n, V]` against `targets`
    /// with per-row `weights`; returns a `[1,1]` scalar:
    /// `sum_i w_i * (-log softmax(logits_i)[t_i]) / sum_i w_i`.
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree or all weights are zero.
    pub fn cross_entropy(
        &mut self,
        logits: TensorId,
        targets: &[usize],
        weights: &[f32],
    ) -> TensorId {
        let v = &self.nodes[logits.0].value;
        assert_eq!(v.rows, targets.len());
        assert_eq!(v.rows, weights.len());
        let wsum: f32 = weights.iter().sum();
        assert!(wsum > 0.0, "all-zero loss weights");
        let lane_sweeps = self.kernels.lane_sweeps();
        let mut probs = Matrix::zeros(v.rows, v.cols);
        let mut loss = 0.0f32;
        for r in 0..v.rows {
            let row = &v.data[r * v.cols..(r + 1) * v.cols];
            let prow = &mut probs.data[r * v.cols..(r + 1) * v.cols];
            if lane_sweeps {
                // The vocab-wide softmax is the single largest exp sink in
                // a train step (T·V calls per example); the lane sweep with
                // its polynomial exp vectorizes the whole row.
                prow.copy_from_slice(row);
                kernels::softmax_row_inplace_lanes(prow);
            } else {
                let (max, denom) = online_max_expsum(row);
                let inv = 1.0 / denom;
                for (o, &x) in prow.iter_mut().zip(row) {
                    *o = (x - max).exp() * inv;
                }
            }
            let p = prow[targets[r]].max(1e-12);
            loss -= weights[r] * p.ln();
        }
        loss /= wsum;
        let needs = self.needs(logits);
        self.push(
            Matrix::new(1, 1, vec![loss]),
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                weights: weights.to_vec(),
                probs: Box::new(probs),
            },
            needs,
        )
    }

    /// Runs the backward pass from `root` (must be `[1,1]`).
    ///
    /// # Panics
    ///
    /// Panics when `root` is not scalar.
    pub fn backward(&mut self, root: TensorId) {
        {
            let v = &self.nodes[root.0].value;
            assert_eq!((v.rows, v.cols), (1, 1), "backward root must be scalar");
        }
        self.nodes[root.0].grad = Some(Matrix::new(1, 1, vec![1.0]));
        for i in (0..=root.0).rev() {
            if self.nodes[i].grad.is_none() || !self.nodes[i].needs_grad {
                continue;
            }
            let grad = self.nodes[i].grad.take().expect("checked above");
            self.backprop_node(i, &grad);
            self.nodes[i].grad = Some(grad);
        }
    }

    fn accumulate(&mut self, id: TensorId, delta: Matrix) {
        if !self.nodes[id.0].needs_grad {
            return;
        }
        match &mut self.nodes[id.0].grad {
            Some(g) => {
                for (a, b) in g.data.iter_mut().zip(&delta.data) {
                    *a += b;
                }
            }
            None => self.nodes[id.0].grad = Some(delta),
        }
    }

    /// Computes the input deltas of node `i` under `grad` and accumulates
    /// them. Deltas are produced with only shared borrows of the tape (no
    /// operand clones) and applied afterwards.
    fn backprop_node(&mut self, i: usize, grad: &Matrix) {
        let mode = self.kernels;
        let mut deltas: Vec<(TensorId, Matrix)> = Vec::with_capacity(2);
        match &self.nodes[i].op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let (a, b) = (*a, *b);
                let av = &self.nodes[a.0].value;
                let bv = &self.nodes[b.0].value;
                // dA = dC · Bᵀ
                if self.needs(a) {
                    let mut da = Matrix::zeros(av.rows, av.cols);
                    kernels::matmul_nt_into(mode, grad, bv, &mut da);
                    deltas.push((a, da));
                }
                // dB = Aᵀ · dC
                if self.needs(b) {
                    let mut db = Matrix::zeros(bv.rows, bv.cols);
                    kernels::matmul_tn_into(mode, av, grad, &mut db);
                    deltas.push((b, db));
                }
            }
            Op::MatMulNt(a, b) => {
                let (a, b) = (*a, *b);
                let av = &self.nodes[a.0].value;
                let bv = &self.nodes[b.0].value;
                // C = A Bᵀ: dA = dC · B ; dB = dCᵀ · A
                if self.needs(a) {
                    let mut da = Matrix::zeros(av.rows, av.cols);
                    kernels::matmul_into(mode, grad, bv, &mut da);
                    deltas.push((a, da));
                }
                if self.needs(b) {
                    let mut db = Matrix::zeros(bv.rows, bv.cols);
                    kernels::matmul_tn_into(mode, grad, av, &mut db);
                    deltas.push((b, db));
                }
            }
            Op::Add(a, b) => {
                let (a, b) = (*a, *b);
                deltas.push((a, grad.clone()));
                deltas.push((b, grad.clone()));
            }
            Op::AddRow(a, row) => {
                let (a, row) = (*a, *row);
                deltas.push((a, grad.clone()));
                if self.needs(row) {
                    let mut dr = Matrix::zeros(1, grad.cols);
                    for r in 0..grad.rows {
                        for c in 0..grad.cols {
                            dr.data[c] += grad.data[r * grad.cols + c];
                        }
                    }
                    deltas.push((row, dr));
                }
            }
            Op::Mul(a, b) => {
                let (a, b) = (*a, *b);
                if self.needs(a) {
                    let bv = &self.nodes[b.0].value;
                    let mut da = grad.clone();
                    for (g, x) in da.data.iter_mut().zip(&bv.data) {
                        *g *= x;
                    }
                    deltas.push((a, da));
                }
                if self.needs(b) {
                    let av = &self.nodes[a.0].value;
                    let mut db = grad.clone();
                    for (g, x) in db.data.iter_mut().zip(&av.data) {
                        *g *= x;
                    }
                    deltas.push((b, db));
                }
            }
            Op::Scale(a, k) => {
                let (a, k) = (*a, *k);
                let mut da = grad.clone();
                for g in da.data.iter_mut() {
                    *g *= k;
                }
                deltas.push((a, da));
            }
            Op::Gelu(a) => {
                let a = *a;
                let av = &self.nodes[a.0].value;
                let mut da = grad.clone();
                if mode.lane_sweeps() {
                    for (g, &x) in da.data.iter_mut().zip(&av.data) {
                        *g *= gelu_bwd_fast(x);
                    }
                } else {
                    for (g, &x) in da.data.iter_mut().zip(&av.data) {
                        *g *= gelu_bwd(x);
                    }
                }
                deltas.push((a, da));
            }
            Op::LayerNorm(a, stats) => {
                let a = *a;
                let av = &self.nodes[a.0].value;
                let mut da = Matrix::zeros(av.rows, av.cols);
                let n = av.cols as f32;
                for (r, &(mean, rstd)) in stats.iter().enumerate() {
                    let xs = &av.data[r * av.cols..(r + 1) * av.cols];
                    let gs = &grad.data[r * av.cols..(r + 1) * av.cols];
                    let sum_g: f32 = gs.iter().sum();
                    let sum_gx: f32 = gs.iter().zip(xs).map(|(g, x)| g * (x - mean) * rstd).sum();
                    for c in 0..av.cols {
                        let xhat = (xs[c] - mean) * rstd;
                        da.data[r * av.cols + c] = rstd * (gs[c] - sum_g / n - xhat * sum_gx / n);
                    }
                }
                deltas.push((a, da));
            }
            Op::Softmax(a) => {
                let a = *a;
                let sv = &self.nodes[i].value;
                let mut da = Matrix::zeros(sv.rows, sv.cols);
                for r in 0..sv.rows {
                    let srow = &sv.data[r * sv.cols..(r + 1) * sv.cols];
                    let grow = &grad.data[r * sv.cols..(r + 1) * sv.cols];
                    let dot: f32 = srow.iter().zip(grow).map(|(s, g)| s * g).sum();
                    for c in 0..sv.cols {
                        da.data[r * sv.cols + c] = srow[c] * (grow[c] - dot);
                    }
                }
                deltas.push((a, da));
            }
            Op::Gather(table, ids) => {
                let table = *table;
                let (tr, tc) = self.shape(table);
                let mut dt = Matrix::zeros(tr, tc);
                for (r, id) in ids.iter().enumerate() {
                    for c in 0..tc {
                        dt.data[id * tc + c] += grad.data[r * tc + c];
                    }
                }
                deltas.push((table, dt));
            }
            Op::SliceCols(a, start, len) => {
                let (a, start, len) = (*a, *start, *len);
                let (ar, ac) = self.shape(a);
                let mut da = Matrix::zeros(ar, ac);
                for r in 0..ar {
                    for c in 0..len {
                        da.data[r * ac + start + c] = grad.data[r * len + c];
                    }
                }
                deltas.push((a, da));
            }
            Op::SliceRows(a, rows) => {
                let (a, rows) = (*a, *rows);
                let (ar, ac) = self.shape(a);
                let mut da = Matrix::zeros(ar, ac);
                da.data[..rows * ac].copy_from_slice(&grad.data);
                deltas.push((a, da));
            }
            Op::ConcatCols(parts) => {
                let mut off = 0;
                for p in parts.clone() {
                    let (pr, pc) = self.shape(p);
                    if self.needs(p) {
                        let mut dp = Matrix::zeros(pr, pc);
                        for r in 0..pr {
                            for c in 0..pc {
                                dp.data[r * pc + c] = grad.data[r * grad.cols + off + c];
                            }
                        }
                        deltas.push((p, dp));
                    }
                    off += pc;
                }
            }
            Op::CrossEntropy { logits, targets, weights, probs } => {
                let logits = *logits;
                let wsum: f32 = weights.iter().sum();
                let g0 = grad.data[0];
                let mut dl = Matrix::zeros(probs.rows, probs.cols);
                for r in 0..probs.rows {
                    let w = g0 * weights[r] / wsum;
                    let prow = &probs.data[r * probs.cols..(r + 1) * probs.cols];
                    let drow = &mut dl.data[r * probs.cols..(r + 1) * probs.cols];
                    for (d, &p) in drow.iter_mut().zip(prow) {
                        *d = w * p;
                    }
                    drow[targets[r]] -= w;
                }
                deltas.push((logits, dl));
            }
        }
        for (id, delta) in deltas {
            self.accumulate(id, delta);
        }
    }
}

/// GELU forward (tanh approximation) — shared by the graph op and the
/// KV-cached decode path.
pub(crate) fn gelu_fwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_bwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044715 * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// [`gelu_fwd`] with the vectorizable [`kernels::tanh_approx`] — the
/// lane-sweep (Simd/int8) graph families' activation. The decode path
/// always uses the libm [`gelu_fwd`], keeping f32 decode bit-identical
/// across families.
pub(crate) fn gelu_fwd_fast(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + kernels::tanh_approx(C * (x + 0.044715 * x * x * x)))
}

fn gelu_bwd_fast(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044715 * x * x * x);
    let t = kernels::tanh_approx(inner);
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Numerically checks d(loss)/d(param[idx]) for a scalar-producing
    /// closure rebuilt per evaluation.
    fn finite_diff<F>(param: &Matrix, idx: usize, f: F) -> f32
    where
        F: Fn(&Matrix) -> f32,
    {
        let eps = 1e-2f32;
        let mut plus = param.clone();
        plus.data[idx] += eps;
        let mut minus = param.clone();
        minus.data[idx] -= eps;
        (f(&plus) - f(&minus)) / (2.0 * eps)
    }

    fn seeded(rows: usize, cols: usize, seed: u64) -> Matrix {
        // deterministic pseudo-random values in [-0.5, 0.5]
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let data = (0..rows * cols)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x >> 11) as f32 / (1u64 << 53) as f32) - 0.5
            })
            .collect();
        Matrix::new(rows, cols, data)
    }

    #[test]
    fn shared_softmax_matches_graph_softmax_bitwise() {
        // `softmax_row_inplace` is the one softmax both the graph op and
        // the decode fast path use; pin that the graph op really routes
        // through it (bit-identical rows) and that it behaves.
        let m = seeded(5, 9, 42);
        let mut g = Graph::with_kernels(KernelMode::Blocked);
        let a = g.constant(m.clone());
        let s = g.softmax(a, false);
        let graph_rows = g.value(s).clone();
        for r in 0..m.rows {
            let mut row = m.data[r * m.cols..(r + 1) * m.cols].to_vec();
            softmax_row_inplace(&mut row);
            let graph_row = &graph_rows.data[r * m.cols..(r + 1) * m.cols];
            let ours: Vec<u32> = row.iter().map(|x| x.to_bits()).collect();
            let theirs: Vec<u32> = graph_row.iter().map(|x| x.to_bits()).collect();
            assert_eq!(ours, theirs, "row {r} diverged");
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn shared_softmax_handles_extreme_rows() {
        let mut row = vec![1000.0f32, 0.0, -1000.0];
        softmax_row_inplace(&mut row);
        assert!((row[0] - 1.0).abs() < 1e-6, "{row:?}");
        let mut single = vec![-3.5f32];
        softmax_row_inplace(&mut single);
        assert_eq!(single[0].to_bits(), 1.0f32.to_bits());
    }

    #[test]
    fn matmul_forward_correct() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let b = g.constant(Matrix::new(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c).data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_nt_matches_matmul_with_transpose() {
        let a = seeded(3, 4, 1);
        let b = seeded(5, 4, 2);
        let mut bt = Matrix::zeros(4, 5);
        for r in 0..5 {
            for c in 0..4 {
                bt.data[c * 5 + r] = b.data[r * 4 + c];
            }
        }
        let mut g = Graph::new();
        let (ia, ib, ibt) = (g.constant(a), g.constant(b), g.constant(bt));
        let c1 = g.matmul_nt(ia, ib);
        let c2 = g.matmul(ia, ibt);
        for (x, y) in g.value(c1).data.iter().zip(&g.value(c2).data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    /// One scalar loss used for gradient checking: weighted CE over a tiny
    /// two-layer network exercising most ops.
    fn loss_through_net(w1: &Matrix, w2: &Matrix) -> f32 {
        let mut g = Graph::new();
        let x = g.constant(seeded(4, 3, 7));
        let p1 = g.param(w1.clone());
        let p2 = g.param(w2.clone());
        let h = g.matmul(x, p1);
        let h = g.gelu(h);
        let h = g.layernorm(h);
        let logits = g.matmul(h, p2);
        let loss = g.cross_entropy(logits, &[0, 2, 1, 3], &[1.0, 0.5, 0.8, 0.2]);
        g.value(loss).data[0]
    }

    #[test]
    fn gradients_match_finite_differences() {
        let w1 = seeded(3, 5, 11);
        let w2 = seeded(5, 4, 13);
        // analytic gradients
        let mut g = Graph::new();
        let x = g.constant(seeded(4, 3, 7));
        let p1 = g.param(w1.clone());
        let p2 = g.param(w2.clone());
        let h = g.matmul(x, p1);
        let h = g.gelu(h);
        let h = g.layernorm(h);
        let logits = g.matmul(h, p2);
        let loss = g.cross_entropy(logits, &[0, 2, 1, 3], &[1.0, 0.5, 0.8, 0.2]);
        g.backward(loss);
        let g1 = g.grad(p1);
        let g2 = g.grad(p2);
        for idx in [0usize, 3, 7, 14] {
            let fd = finite_diff(&w1, idx, |w| loss_through_net(w, &w2));
            assert!(
                (g1.data[idx] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "w1[{idx}]: analytic {} vs fd {fd}",
                g1.data[idx]
            );
        }
        for idx in [0usize, 5, 11, 19] {
            let fd = finite_diff(&w2, idx, |w| loss_through_net(&w1, w));
            assert!(
                (g2.data[idx] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "w2[{idx}]: analytic {} vs fd {fd}",
                g2.data[idx]
            );
        }
    }

    #[test]
    fn attention_path_gradcheck() {
        // softmax(Q Kᵀ) V with causal mask, loss = weighted CE
        let wq = seeded(3, 3, 21);
        let run = |wq: &Matrix| -> (f32, Matrix) {
            let mut g = Graph::new();
            let x = g.constant(seeded(4, 3, 22));
            let pq = g.param(wq.clone());
            let q = g.matmul(x, pq);
            let scores = g.matmul_nt(q, x);
            let scaled = g.scale(scores, 0.5773);
            let attn = g.softmax(scaled, true);
            let ctx = g.matmul(attn, x);
            let loss = g.cross_entropy(ctx, &[0, 1, 2, 0], &[1.0, 1.0, 1.0, 1.0]);
            g.backward(loss);
            (g.value(loss).data[0], g.grad(pq))
        };
        let (_, analytic) = run(&wq);
        for idx in [0usize, 4, 8] {
            let fd = finite_diff(&wq, idx, |w| run(w).0);
            assert!(
                (analytic.data[idx] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "wq[{idx}]: analytic {} vs fd {fd}",
                analytic.data[idx]
            );
        }
    }

    #[test]
    fn gather_grad_scatters() {
        let table = seeded(5, 2, 31);
        let run = |t: &Matrix| -> (f32, Matrix) {
            let mut g = Graph::new();
            let pt = g.param(t.clone());
            let got = g.gather(pt, &[1, 3, 1]);
            let loss = g.cross_entropy(got, &[0, 1, 0], &[1.0, 1.0, 1.0]);
            g.backward(loss);
            (g.value(loss).data[0], g.grad(pt))
        };
        let (_, analytic) = run(&table);
        for idx in [2usize, 3, 6, 7] {
            let fd = finite_diff(&table, idx, |t| run(t).0);
            assert!((analytic.data[idx] - fd).abs() < 2e-2 * (1.0 + fd.abs()), "table[{idx}]");
        }
        // rows never gathered get zero grad
        assert_eq!(analytic.data[0], 0.0);
        assert_eq!(analytic.data[8], 0.0);
    }

    #[test]
    fn slice_concat_roundtrip_grads() {
        let w = seeded(2, 6, 41);
        let run = |w: &Matrix| -> (f32, Matrix) {
            let mut g = Graph::new();
            let pw = g.param(w.clone());
            let l = g.slice_cols(pw, 0, 3);
            let r = g.slice_cols(pw, 3, 3);
            let back = g.concat_cols(&[l, r]);
            let loss = g.cross_entropy(back, &[0, 5], &[1.0, 2.0]);
            g.backward(loss);
            (g.value(loss).data[0], g.grad(pw))
        };
        let (_, analytic) = run(&w);
        for idx in [0usize, 4, 9, 11] {
            let fd = finite_diff(&w, idx, |w| run(w).0);
            assert!((analytic.data[idx] - fd).abs() < 2e-2 * (1.0 + fd.abs()), "w[{idx}]");
        }
    }

    #[test]
    fn slice_rows_takes_prefix_and_scatters_grad() {
        let w = seeded(4, 3, 43);
        let run = |w: &Matrix| -> (f32, Matrix, Matrix) {
            let mut g = Graph::new();
            let pw = g.param(w.clone());
            let top = g.slice_rows(pw, 2);
            let loss = g.cross_entropy(top, &[0, 2], &[1.0, 1.0]);
            g.backward(loss);
            (g.value(loss).data[0], g.value(top).clone(), g.grad(pw))
        };
        let (_, top, analytic) = run(&w);
        assert_eq!(top.data, w.data[..6].to_vec(), "forward is the row prefix");
        for idx in [0usize, 2, 5] {
            let fd = finite_diff(&w, idx, |w| run(w).0);
            assert!((analytic.data[idx] - fd).abs() < 2e-2 * (1.0 + fd.abs()), "w[{idx}]");
        }
        // rows beyond the slice receive zero grad
        assert!(analytic.data[6..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn slice_rows_full_height_is_identity() {
        let mut g = Graph::new();
        let a = g.constant(seeded(3, 2, 44));
        let s = g.slice_rows(a, 3);
        assert_eq!(s, a);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_causal_masks() {
        let mut g = Graph::new();
        let a = g.constant(seeded(4, 4, 51));
        let s = g.softmax(a, true);
        let v = g.value(s);
        for r in 0..4 {
            let sum: f32 = (0..4).map(|c| v.at(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
            for c in (r + 1)..4 {
                assert_eq!(v.at(r, c), 0.0, "causal mask leak at [{r},{c}]");
            }
        }
    }

    #[test]
    fn weighted_ce_all_ones_equals_unweighted() {
        let logits = seeded(3, 4, 61);
        let mut g1 = Graph::new();
        let l1 = g1.constant(logits.clone());
        let c1 = g1.cross_entropy(l1, &[1, 2, 0], &[1.0, 1.0, 1.0]);
        let mut g2 = Graph::new();
        let l2 = g2.constant(logits);
        let c2 = g2.cross_entropy(l2, &[1, 2, 0], &[2.0, 2.0, 2.0]);
        // weights normalise out: scaling all weights equally changes nothing
        assert!((g1.value(c1).data[0] - g2.value(c2).data[0]).abs() < 1e-6);
    }

    #[test]
    fn weighted_ce_downweights_rows() {
        // Row 1 has a terrible prediction; downweighting it must reduce loss.
        let logits = Matrix::new(2, 2, vec![5.0, 0.0, 5.0, 0.0]);
        let mut g1 = Graph::new();
        let l1 = g1.constant(logits.clone());
        let full = g1.cross_entropy(l1, &[0, 1], &[1.0, 1.0]);
        let mut g2 = Graph::new();
        let l2 = g2.constant(logits);
        let down = g2.cross_entropy(l2, &[0, 1], &[1.0, 0.1]);
        assert!(g2.value(down).data[0] < g1.value(full).data[0]);
    }

    #[test]
    #[should_panic(expected = "all-zero loss weights")]
    fn zero_weights_panic() {
        let mut g = Graph::new();
        let l = g.constant(Matrix::zeros(1, 2));
        let _ = g.cross_entropy(l, &[0], &[0.0]);
    }

    #[test]
    fn layernorm_rows_are_standardised() {
        let mut g = Graph::new();
        let a = g.constant(seeded(3, 8, 71));
        let n = g.layernorm(a);
        let v = g.value(n);
        for r in 0..3 {
            let row: Vec<f32> = (0..8).map(|c| v.at(r, c)).collect();
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn constants_receive_no_grad() {
        let mut g = Graph::new();
        let c = g.constant(seeded(2, 2, 81));
        let p = g.param(seeded(2, 2, 82));
        let s = g.add(c, p);
        let loss = g.cross_entropy(s, &[0, 1], &[1.0, 1.0]);
        g.backward(loss);
        assert!(g.grad(c).data.iter().all(|&x| x == 0.0));
        assert!(g.grad(p).data.iter().any(|&x| x != 0.0));
    }

    #[test]
    #[should_panic(expected = "matrix shape mismatch")]
    fn bad_shape_panics() {
        let _ = Matrix::new(2, 2, vec![1.0; 3]);
    }

    // ---- blocked-vs-reference kernel equivalence ----

    /// Like [`seeded`] but with ~3/4 of the entries forced to exact zero,
    /// so the reference kernel's zero-skip path is exercised.
    fn seeded_zero_heavy(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut m = seeded(rows, cols, seed);
        let mut x = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        for v in m.data.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x & 3 != 0 {
                *v = 0.0;
            }
        }
        m
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Forward matmul: blocked and reference kernels agree bit-for-bit
        /// (same per-element accumulation order).
        #[test]
        fn blocked_matmul_is_bit_identical_to_reference(
            m in 1usize..9, k in 1usize..70, n in 1usize..300,
            seed in 0u64..1_000,
        ) {
            let a = seeded(m, k, seed);
            let b = seeded(k, n, seed ^ 0xABCD);
            let mut fast = Matrix::zeros(m, n);
            let mut naive = Matrix::zeros(m, n);
            kernels::matmul_blocked(&a, &b, &mut fast);
            kernels::matmul_reference(&a, &b, &mut naive);
            prop_assert_eq!(
                fast.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                naive.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }

        /// `A · Bᵀ` (attention scores / dA of matmul): bit-identical.
        #[test]
        fn blocked_matmul_nt_is_bit_identical_to_reference(
            m in 1usize..9, k in 1usize..70, n in 1usize..40,
            seed in 0u64..1_000,
        ) {
            let a = seeded(m, k, seed);
            let b = seeded(n, k, seed ^ 0x1234);
            let mut fast = Matrix::zeros(m, n);
            let mut naive = Matrix::zeros(m, n);
            kernels::matmul_nt_blocked(&a, &b, &mut fast);
            kernels::matmul_nt_reference(&a, &b, &mut naive);
            prop_assert_eq!(
                fast.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                naive.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }

        /// `Aᵀ · C` (dB of both matmuls): bit-identical.
        #[test]
        fn blocked_matmul_tn_is_bit_identical_to_reference(
            r in 1usize..40, m in 1usize..9, n in 1usize..300,
            seed in 0u64..1_000,
        ) {
            let a = seeded(r, m, seed);
            let c = seeded(r, n, seed ^ 0x7777);
            let mut fast = Matrix::zeros(m, n);
            let mut naive = Matrix::zeros(m, n);
            kernels::matmul_tn_blocked(&a, &c, &mut fast);
            kernels::matmul_tn_reference(&a, &c, &mut naive);
            prop_assert_eq!(
                fast.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                naive.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }

        /// Zero-heavy operands (where the reference forward kernel takes its
        /// skip path) still agree bit-for-bit.
        #[test]
        fn zero_heavy_matmul_is_bit_identical(
            m in 1usize..6, k in 1usize..20, n in 1usize..50,
            seed in 0u64..1_000,
        ) {
            let a = seeded_zero_heavy(m, k, seed ^ 0x5EED);
            let b = seeded(k, n, seed);
            let mut fast = Matrix::zeros(m, n);
            let mut naive = Matrix::zeros(m, n);
            kernels::matmul_blocked(&a, &b, &mut fast);
            kernels::matmul_reference(&a, &b, &mut naive);
            prop_assert_eq!(
                fast.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                naive.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }

        /// End-to-end backward: a full graph (matmul chains, gelu,
        /// layernorm, attention-style nt, CE) produces bit-identical
        /// gradients through the blocked and the reference kernels, because
        /// every kernel variant preserves per-element accumulation order.
        #[test]
        fn backward_kernels_agree_through_a_full_graph(
            rows in 2usize..6, d in 2usize..10, v in 2usize..30,
            seed in 0u64..1_000,
        ) {
            let x = seeded(rows, d, seed);
            let w1 = seeded(d, d, seed ^ 1);
            let w2 = seeded(d, v, seed ^ 2);
            let run = |mode: KernelMode| {
                let mut g = Graph::with_kernels(mode);
                let xi = g.constant(x.clone());
                let p1 = g.param(w1.clone());
                let p2 = g.param(w2.clone());
                let h = g.matmul(xi, p1);
                let h = g.gelu(h);
                let h = g.layernorm(h);
                let scores = g.matmul_nt(h, xi);
                let attn = g.softmax(scores, true);
                let ctx = g.matmul(attn, xi);
                let logits = g.matmul(ctx, p2);
                let logits = g.slice_rows(logits, rows - 1);
                let targets: Vec<usize> = (0..rows - 1).map(|i| i % v).collect();
                let weights = vec![1.0f32; rows - 1];
                let loss = g.cross_entropy(logits, &targets, &weights);
                g.backward(loss);
                (g.value(loss).data[0].to_bits(),
                    g.grad(p1).data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    g.grad(p2).data.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
            };
            let blocked = run(KernelMode::Blocked);
            let reference = run(KernelMode::Reference);
            prop_assert_eq!(blocked, reference);
        }

        // ---- simd-vs-blocked kernel pins ----

        /// Simd matmul keeps ascending-k accumulation per element: pinned
        /// bit-identical to the blocked kernel.
        #[test]
        fn simd_matmul_is_bit_identical_to_blocked(
            m in 1usize..9, k in 1usize..70, n in 1usize..300,
            seed in 0u64..1_000,
        ) {
            let a = seeded(m, k, seed);
            let b = seeded(k, n, seed ^ 0xABCD);
            let mut simd = Matrix::zeros(m, n);
            let mut blocked = Matrix::zeros(m, n);
            kernels::matmul_simd(&a, &b, &mut simd);
            kernels::matmul_blocked(&a, &b, &mut blocked);
            prop_assert_eq!(
                simd.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                blocked.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }

        /// Simd `aᵀ · c` keeps ascending-r accumulation per element: pinned
        /// bit-identical to the blocked kernel.
        #[test]
        fn simd_matmul_tn_is_bit_identical_to_blocked(
            r in 1usize..40, m in 1usize..9, n in 1usize..300,
            seed in 0u64..1_000,
        ) {
            let a = seeded(r, m, seed);
            let c = seeded(r, n, seed ^ 0x7777);
            let mut simd = Matrix::zeros(m, n);
            let mut blocked = Matrix::zeros(m, n);
            kernels::matmul_tn_simd(&a, &c, &mut simd);
            kernels::matmul_tn_blocked(&a, &c, &mut blocked);
            prop_assert_eq!(
                simd.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                blocked.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }

        /// Simd `a · bᵀ` lane-splits its accumulators (the documented
        /// exactness trade): deterministic (two runs bit-identical) and
        /// numerically tight against the blocked kernel.
        #[test]
        fn simd_matmul_nt_is_deterministic_and_close_to_blocked(
            m in 1usize..9, k in 1usize..70, n in 1usize..40,
            seed in 0u64..1_000,
        ) {
            let a = seeded(m, k, seed);
            let b = seeded(n, k, seed ^ 0x1234);
            let mut simd = Matrix::zeros(m, n);
            let mut again = Matrix::zeros(m, n);
            let mut blocked = Matrix::zeros(m, n);
            kernels::matmul_nt_simd(&a, &b, &mut simd);
            kernels::matmul_nt_simd(&a, &b, &mut again);
            kernels::matmul_nt_blocked(&a, &b, &mut blocked);
            prop_assert_eq!(
                simd.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                again.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            for (s, r) in simd.data.iter().zip(&blocked.data) {
                prop_assert!((s - r).abs() <= 1e-4 * (1.0 + r.abs()), "{s} vs {r}");
            }
        }

        /// A Simd matmul→gelu→matmul→CE chain is exactly reproducible
        /// (same bits on every run) and tight against Blocked. It is *not*
        /// bit-identical: the lane-sweep families evaluate gelu's tanh and
        /// the cross-entropy softmax with the vectorizable polynomial
        /// [`kernels::exp_approx`], the documented ≈2-ulp Simd trade. The
        /// order-preserving matmul/tn kernels themselves stay pinned
        /// bit-identical by the dedicated tests above.
        #[test]
        fn simd_graph_is_deterministic_and_close_to_blocked(
            rows in 2usize..6, d in 2usize..10, v in 2usize..30,
            seed in 0u64..1_000,
        ) {
            let x = seeded(rows, d, seed);
            let w1 = seeded(d, d, seed ^ 3);
            let w2 = seeded(d, v, seed ^ 4);
            let run = |mode: KernelMode| {
                let mut g = Graph::with_kernels(mode);
                let xi = g.constant(x.clone());
                let p1 = g.param(w1.clone());
                let p2 = g.param(w2.clone());
                let h = g.matmul(xi, p1);
                let h = g.gelu(h);
                let logits = g.matmul(h, p2);
                let targets: Vec<usize> = (0..rows).map(|i| i % v).collect();
                let loss = g.cross_entropy(logits, &targets, &vec![1.0f32; rows]);
                g.backward(loss);
                (g.value(logits).clone(), g.value(loss).data[0], g.grad(p2).clone())
            };
            let (s_logits, s_loss, s_grad) = run(KernelMode::Simd);
            let (s_logits2, s_loss2, s_grad2) = run(KernelMode::Simd);
            prop_assert_eq!(
                s_logits.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                s_logits2.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            prop_assert_eq!(s_loss.to_bits(), s_loss2.to_bits());
            prop_assert_eq!(
                s_grad.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                s_grad2.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            let (b_logits, b_loss, b_grad) = run(KernelMode::Blocked);
            for (s, b) in s_logits.data.iter().zip(&b_logits.data) {
                prop_assert!((s - b).abs() <= 1e-4 * (1.0 + b.abs()), "logits {s} vs {b}");
            }
            prop_assert!((s_loss - b_loss).abs() <= 1e-4 * (1.0 + b_loss.abs()));
            for (s, b) in s_grad.data.iter().zip(&b_grad.data) {
                prop_assert!((s - b).abs() <= 1e-4 * (1.0 + b.abs()), "grad {s} vs {b}");
            }
        }

        /// Lane-parallel softmax: deterministic, rows sum to 1, and tight
        /// against the shared online-normalizer softmax.
        #[test]
        fn lane_softmax_is_close_to_shared_softmax(
            n in 1usize..40, seed in 0u64..1_000,
        ) {
            let m = seeded(1, n, seed);
            let mut lanes = m.data.clone();
            let mut again = m.data.clone();
            let mut shared = m.data.clone();
            kernels::softmax_row_inplace_lanes(&mut lanes);
            kernels::softmax_row_inplace_lanes(&mut again);
            softmax_row_inplace(&mut shared);
            prop_assert_eq!(
                lanes.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                again.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            let sum: f32 = lanes.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5, "sums to {sum}");
            for (l, s) in lanes.iter().zip(&shared) {
                prop_assert!((l - s).abs() <= 1e-6 + 1e-5 * s.abs(), "{l} vs {s}");
            }
        }

        /// Lane-parallel layer-norm statistics: tight against the scalar
        /// sweep.
        #[test]
        fn lane_sum_sumsq_is_close_to_scalar(
            n in 1usize..70, seed in 0u64..1_000,
        ) {
            let m = seeded(1, n, seed);
            let (sum, sumsq) = kernels::lane_sum_sumsq(&m.data);
            let ssum: f32 = m.data.iter().sum();
            let ssumsq: f32 = m.data.iter().map(|x| x * x).sum();
            prop_assert!((sum - ssum).abs() <= 1e-4 * (1.0 + ssum.abs()));
            prop_assert!((sumsq - ssumsq).abs() <= 1e-4 * (1.0 + ssumsq.abs()));
        }
    }

    #[test]
    fn kernel_mode_parses_and_displays() {
        for mode in [
            KernelMode::Blocked,
            KernelMode::Reference,
            KernelMode::Simd,
            KernelMode::QuantizedInt8,
        ] {
            assert_eq!(mode.as_str().parse::<KernelMode>().unwrap(), mode);
            assert_eq!(format!("{mode}"), mode.as_str());
        }
        assert_eq!("quantized-int8".parse::<KernelMode>().unwrap(), KernelMode::QuantizedInt8);
        assert!("avx512".parse::<KernelMode>().is_err());
    }

    #[test]
    fn kernel_mode_global_shim_sets_graph_default() {
        // The global is only a default for `Graph::new`; everything else
        // in this test binary plumbs the mode explicitly, so the brief
        // flip below cannot perturb concurrently running tests' numerics.
        set_kernel_mode(KernelMode::Simd);
        assert_eq!(kernel_mode(), KernelMode::Simd);
        assert_eq!(Graph::new().kernels(), KernelMode::Simd);
        set_kernel_mode(KernelMode::Blocked);
        assert_eq!(kernel_mode(), KernelMode::Blocked);
        assert_eq!(Graph::new().kernels(), KernelMode::Blocked);
        assert_eq!(Graph::with_kernels(KernelMode::Reference).kernels(), KernelMode::Reference);
    }
}
