//! Per-row absmax int8 weight quantization for the decode fast path.
//!
//! [`KernelMode::QuantizedInt8`](crate::KernelMode) sessions quantize the
//! effective (LoRA-merged) projection weights once at session build:
//! every *output* row gets an f32 scale `s = absmax / 127`, the weights
//! are stored transposed (output-major, so each dot product streams one
//! contiguous row — half the memory traffic of f32), activations
//! are quantized per row on the fly, and the matmul accumulates in `i32`.
//! Integer addition is associative, so the accumulator vectorizes
//! *without* changing the result — the int8 path is exactly reproducible
//! at any lane width or thread count, unlike a reordered f32 sum. The
//! output is dequantized by the product of the two scales.
//!
//! Accuracy is gated, not assumed: a quantize→dequantize round-trip
//! proptest bounds the per-weight error at `scale / 2`, and the eval
//! harness pins int8 pass@k parity against f32 on the n=10 workload.

use crate::tensor::Matrix;

/// Round to the nearest integer via the `1.5 · 2²³` magic constant (two
/// adds, round-half-to-even) — `f32::round` is a libm call on baseline
/// x86-64 that would serialize every quantization sweep. Inputs are
/// pre-clamped to the i8 range, far inside the trick's valid domain.
#[inline]
fn round_fast(x: f32) -> f32 {
    const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23
    (x + MAGIC) - MAGIC
}

/// Maximum quantized magnitude (symmetric 8-bit levels; -128 is unused).
///
/// Quantized values live in `[-127, 127]` but are *stored* as `i16`: an
/// i16·i16 multiply-accumulate reduction is the packed multiply-add
/// (`pmaddwd`) idiom the autovectorizer recognizes on baseline x86-64,
/// which measures ~8× faster than any i8-loading form — and the values
/// are identical integers, so the results are bit-for-bit the same.
pub const QMAX: f32 = 127.0;

/// An int8 weight matrix stored output-major (transposed), with one f32
/// dequantization scale per output row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    /// Output dimension (columns of the f32 weight this was built from).
    pub out_dim: usize,
    /// Input dimension (rows of the f32 weight).
    pub in_dim: usize,
    /// `out_dim` contiguous rows of `in_dim` quantized weights.
    pub data: Vec<i16>,
    /// Per-output-row dequantization scale (`absmax / 127`).
    pub scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes `w[in_dim, out_dim]` column-by-column: column `j` of `w`
    /// becomes row `j` of the int8 storage with scale
    /// `absmax(col j) / 127`. An all-zero column gets scale 0 and all-zero
    /// weights.
    pub fn quantize(w: &Matrix) -> QuantizedMatrix {
        let (in_dim, out_dim) = (w.rows, w.cols);
        let mut data = vec![0i16; in_dim * out_dim];
        let mut scales = vec![0.0f32; out_dim];
        for j in 0..out_dim {
            let mut absmax = 0.0f32;
            for r in 0..in_dim {
                absmax = absmax.max(w.data[r * out_dim + j].abs());
            }
            if absmax == 0.0 {
                continue;
            }
            let scale = absmax / QMAX;
            let inv = QMAX / absmax;
            let row = &mut data[j * in_dim..(j + 1) * in_dim];
            for (r, q) in row.iter_mut().enumerate() {
                *q = round_fast((w.data[r * out_dim + j] * inv).clamp(-QMAX, QMAX)) as i16;
            }
            scales[j] = scale;
        }
        QuantizedMatrix { out_dim, in_dim, data, scales }
    }

    /// Reconstructs the f32 weight (`[in_dim, out_dim]`, the original
    /// orientation). Each entry is within `scales[j] / 2` of the
    /// original — pinned by the round-trip proptest.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.in_dim, self.out_dim);
        for j in 0..self.out_dim {
            let s = self.scales[j];
            let row = &self.data[j * self.in_dim..(j + 1) * self.in_dim];
            for (r, &q) in row.iter().enumerate() {
                out.data[r * self.out_dim + j] = q as f32 * s;
            }
        }
        out
    }
}

/// Quantizes one f32 activation row into `out` (resized to match) and
/// returns its dequantization scale (`absmax / 127`; 0 for an all-zero
/// row, in which case `out` is all zeros).
pub fn quantize_row_into(x: &[f32], out: &mut Vec<i16>) -> f32 {
    out.clear();
    out.resize(x.len(), 0);
    let mut absmax = 0.0f32;
    for &v in x {
        absmax = absmax.max(v.abs());
    }
    if absmax == 0.0 {
        return 0.0;
    }
    let inv = QMAX / absmax;
    for (q, &v) in out.iter_mut().zip(x) {
        *q = round_fast((v * inv).clamp(-QMAX, QMAX)) as i16;
    }
    absmax / QMAX
}

/// 8-bit-range i16·i16 → i32 dot product over a *compile-time* width
/// (`K` must be a multiple of 8 — every dispatched width is).
///
/// The reduction is written as eight explicit i32 partial lanes with one
/// horizontal sum at the end — handing LLVM the packed multiply-add
/// (`pmaddwd`) shape directly instead of hoping it rediscovers it from a
/// serial chain. Measured ~4× faster than the single-accumulator form at
/// K = 128 and ~5× faster than any runtime trip count. Exact: integer
/// addition is associative and the lane sums cannot overflow
/// (|product| ≤ 127² = 16129, so even K = 512 stays far inside i32).
#[inline]
fn qdot_fixed<const K: usize>(x: &[i16], w: &[i16]) -> i32 {
    let x: &[i16; K] = x[..K].try_into().expect("dispatcher checked the width");
    let w: &[i16; K] = w[..K].try_into().expect("dispatcher checked the width");
    let mut lanes = [0i32; 8];
    for c in 0..K / 8 {
        for (l, acc) in lanes.iter_mut().enumerate() {
            *acc += x[c * 8 + l] as i32 * w[c * 8 + l] as i32;
        }
    }
    lanes.iter().sum()
}

/// Runtime-width fallback dot (non-standard `in_dim`s): fixed 16-wide
/// inner blocks recover some packed codegen, a scalar tail finishes.
#[inline]
fn qdot(x: &[i16], w: &[i16]) -> i32 {
    debug_assert_eq!(x.len(), w.len());
    let split = x.len() - x.len() % 16;
    let mut acc = 0i32;
    for (xs, ws) in x[..split].chunks_exact(16).zip(w[..split].chunks_exact(16)) {
        acc += qdot_fixed::<16>(xs, ws);
    }
    for (&xv, &wv) in x[split..].iter().zip(&w[split..]) {
        acc += xv as i32 * wv as i32;
    }
    acc
}

#[inline]
fn qmatvec_fixed<const K: usize>(xq: &[i16], x_scale: f32, w: &QuantizedMatrix, out: &mut [f32]) {
    for (j, o) in out.iter_mut().enumerate() {
        *o = x_scale * w.scales[j] * qdot_fixed::<K>(xq, &w.data[j * K..(j + 1) * K]) as f32;
    }
}

/// `out[j] = x_scale * scales[j] * Σ_k xq[k] · w[j][k]` for one quantized
/// activation row against every output row of `w`.
///
/// The shared dimension is dispatched once to a compile-time-width dot
/// ([`qdot_fixed`]) for the model shapes that occur in practice; every
/// width produces identical i32 sums, so the dispatch is invisible in the
/// output.
pub fn qmatvec_into(xq: &[i16], x_scale: f32, w: &QuantizedMatrix, out: &mut [f32]) {
    debug_assert_eq!(xq.len(), w.in_dim);
    debug_assert_eq!(out.len(), w.out_dim);
    match w.in_dim {
        8 => qmatvec_fixed::<8>(xq, x_scale, w, out),
        16 => qmatvec_fixed::<16>(xq, x_scale, w, out),
        24 => qmatvec_fixed::<24>(xq, x_scale, w, out),
        32 => qmatvec_fixed::<32>(xq, x_scale, w, out),
        48 => qmatvec_fixed::<48>(xq, x_scale, w, out),
        64 => qmatvec_fixed::<64>(xq, x_scale, w, out),
        96 => qmatvec_fixed::<96>(xq, x_scale, w, out),
        128 => qmatvec_fixed::<128>(xq, x_scale, w, out),
        192 => qmatvec_fixed::<192>(xq, x_scale, w, out),
        256 => qmatvec_fixed::<256>(xq, x_scale, w, out),
        384 => qmatvec_fixed::<384>(xq, x_scale, w, out),
        512 => qmatvec_fixed::<512>(xq, x_scale, w, out),
        _ => {
            for (j, o) in out.iter_mut().enumerate() {
                let wrow = &w.data[j * w.in_dim..(j + 1) * w.in_dim];
                *o = x_scale * w.scales[j] * qdot(xq, wrow) as f32;
            }
        }
    }
}

/// Quantized replacement for `matmul_into(a, W, out)` on the decode path:
/// each row of `a[m, in_dim]` is absmax-quantized into the `xq` scratch,
/// multiplied in i32 against the transposed int8 weights, and dequantized
/// into `out[m, out_dim]`.
pub fn qmatmul_rows_into(a: &Matrix, w: &QuantizedMatrix, out: &mut Matrix, xq: &mut Vec<i16>) {
    debug_assert_eq!(a.cols, w.in_dim);
    debug_assert_eq!((out.rows, out.cols), (a.rows, w.out_dim));
    for i in 0..a.rows {
        let x = &a.data[i * a.cols..(i + 1) * a.cols];
        let x_scale = quantize_row_into(x, xq);
        let orow = &mut out.data[i * w.out_dim..(i + 1) * w.out_dim];
        if x_scale == 0.0 {
            orow.fill(0.0);
        } else {
            qmatvec_into(xq, x_scale, w, orow);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::kernels;
    use proptest::prelude::*;

    fn seeded(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let data = (0..rows * cols)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x >> 11) as f32 / (1u64 << 53) as f32) - 0.5
            })
            .collect();
        Matrix::new(rows, cols, data)
    }

    #[test]
    fn zero_matrix_quantizes_to_zero() {
        let q = QuantizedMatrix::quantize(&Matrix::zeros(5, 3));
        assert!(q.data.iter().all(|&v| v == 0));
        assert!(q.scales.iter().all(|&s| s == 0.0));
        assert_eq!(q.dequantize(), Matrix::zeros(5, 3));
    }

    #[test]
    fn quantized_storage_is_transposed() {
        // w[2,3]: column j of w becomes storage row j.
        let w = Matrix::new(2, 3, vec![1.0, 0.5, -0.25, -1.0, 0.25, 0.125]);
        let q = QuantizedMatrix::quantize(&w);
        assert_eq!((q.in_dim, q.out_dim), (2, 3));
        // column 0 is [1.0, -1.0]: absmax 1.0 → scale 1/127, quantized ±127
        assert_eq!(&q.data[0..2], &[127, -127]);
        assert!((q.scales[0] - 1.0 / 127.0).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Round trip: every reconstructed weight is within half a
        /// quantization step (`scale / 2`) of the original.
        #[test]
        fn quantize_dequantize_roundtrip_error_is_bounded(
            rows in 1usize..24, cols in 1usize..24, seed in 0u64..1_000,
        ) {
            let w = seeded(rows, cols, seed);
            let q = QuantizedMatrix::quantize(&w);
            let back = q.dequantize();
            for j in 0..cols {
                // f32 rounding in the scale arithmetic adds at most a few ulps
                let bound = q.scales[j] * 0.5 * (1.0 + 1e-4) + 1e-12;
                for r in 0..rows {
                    let err = (w.at(r, j) - back.at(r, j)).abs();
                    prop_assert!(
                        err <= bound,
                        "w[{r},{j}]: {} vs {} (err {err} > bound {bound})",
                        w.at(r, j), back.at(r, j)
                    );
                }
            }
        }

        /// The full quantized matmul (dynamic activation quantization +
        /// i32 accumulate + dequantize) stays close to the exact f32
        /// product.
        #[test]
        fn quantized_matmul_is_close_to_f32(
            m in 1usize..6, k in 1usize..48, n in 1usize..32, seed in 0u64..1_000,
        ) {
            let a = seeded(m, k, seed);
            let w = seeded(k, n, seed ^ 0xBEEF);
            let q = QuantizedMatrix::quantize(&w);
            let mut quantized = Matrix::zeros(m, n);
            let mut xq = Vec::new();
            qmatmul_rows_into(&a, &q, &mut quantized, &mut xq);
            let mut exact = Matrix::zeros(m, n);
            kernels::matmul_blocked(&a, &w, &mut exact);
            // Per-term error is ≤ (|w|·sa + |a|·sw + sa·sw)/2 with
            // s = absmax/127; bound the k-term sum generously.
            let amax = a.data.iter().fold(0.0f32, |x, v| x.max(v.abs()));
            let wmax = w.data.iter().fold(0.0f32, |x, v| x.max(v.abs()));
            let bound = (k as f32) * amax.max(1e-6) * wmax.max(1e-6) / 60.0 + 1e-6;
            for (qv, ev) in quantized.data.iter().zip(&exact.data) {
                prop_assert!((qv - ev).abs() <= bound, "{qv} vs {ev} (bound {bound})");
            }
        }

        /// The int8 path is exactly reproducible: two evaluations are
        /// bit-identical (i32 accumulation has no ordering freedom).
        #[test]
        fn quantized_matmul_is_deterministic(
            m in 1usize..5, k in 1usize..40, n in 1usize..24, seed in 0u64..1_000,
        ) {
            let a = seeded(m, k, seed);
            let q = QuantizedMatrix::quantize(&seeded(k, n, seed ^ 0xF00D));
            let mut out1 = Matrix::zeros(m, n);
            let mut out2 = Matrix::zeros(m, n);
            let mut xq = Vec::new();
            qmatmul_rows_into(&a, &q, &mut out1, &mut xq);
            qmatmul_rows_into(&a, &q, &mut out2, &mut xq);
            prop_assert_eq!(
                out1.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                out2.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
