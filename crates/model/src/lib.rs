//! # pyranet-model
//!
//! A from-scratch neural language model stack — the PyraNet reproduction's
//! substitute for CodeLlama-7B/13B and DeepSeek-Coder-7B:
//!
//! * [`tensor`] — a tape-based reverse-mode autograd engine over 2-D `f32`
//!   tensors (matmul, layernorm, softmax attention, embedding gather,
//!   weighted cross-entropy). Gradients are verified against finite
//!   differences in the test suite.
//! * [`tokenizer`] — a word-level tokenizer over Verilog + English with
//!   special `<bos>/<sep>/<eos>/<unk>/<pad>` tokens.
//! * [`transformer`] — a decoder-only transformer LM: learned token +
//!   position embeddings, pre-norm blocks with causal multi-head attention
//!   and GELU FFNs, separate output head.
//! * [`lora`] — Low-Rank Adaptation: frozen base weights plus trainable
//!   `A·B` deltas on the attention/FFN projections, matching the paper's
//!   "fine-tuning method utilizes the LoRa technique".
//! * [`adam`] — the Adam optimizer.
//! * [`sampler`] — temperature/top-k sampling for pass@k generation.
//! * [`decode`] — the prefix-cached, batched inference engine: shared
//!   prompt prefill with zero-copy KV forks, lock-step batched decoding
//!   through the selected kernel family, and allocation-free steady state.
//! * [`quant`] — per-row absmax int8 weight quantization for the decode
//!   path ([`KernelMode::QuantizedInt8`]), i32-accumulated and
//!   pass@k-parity gated against f32.
//! * [`config`] — the three base-model configurations standing in for the
//!   Table II architectures.
//!
//! The model is small (hundreds of thousands of parameters, not billions),
//! but it is *real*: it trains with per-sample loss weights, it overfits
//! and underfits, and fine-tuning recipes that order or weight data
//! differently produce measurably different models — which is exactly the
//! machinery PyraNet's contribution needs.

pub mod adam;
pub mod config;
pub mod decode;
pub mod lora;
pub mod quant;
pub mod sampler;
pub mod tensor;
pub mod tokenizer;
pub mod transformer;

pub use adam::Adam;
pub use config::ModelConfig;
pub use decode::{DecodeSession, Generation, PrefixState, PromptPlan, TokenSampler};
pub use sampler::SampleOptions;
pub use tensor::{kernel_mode, set_kernel_mode, KernelMode};
pub use tokenizer::Tokenizer;
pub use transformer::TransformerLm;
