//! Token sampling for generation.

use rand::Rng;

/// Sampling hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleOptions {
    /// Softmax temperature; `0.0` means greedy argmax.
    pub temperature: f32,
    /// Keep only the `top_k` most likely tokens (0 = disabled).
    pub top_k: usize,
}

impl Default for SampleOptions {
    fn default() -> Self {
        SampleOptions { temperature: 0.7, top_k: 0 }
    }
}

/// Samples a token id from raw logits.
pub fn sample_logits<R: Rng>(logits: &[f32], opts: &SampleOptions, rng: &mut R) -> usize {
    sample_logits_into(logits, opts, rng, &mut Vec::new())
}

/// Allocation-aware [`sample_logits`]: `scratch` holds the softmax weights
/// and is cleared on entry, so a caller that samples in a loop (the decode
/// engine, one draw per sequence per token) reuses one buffer instead of
/// allocating per draw. With `top_k` disabled — the eval harness
/// configuration — the call performs no allocation at steady state.
/// Bit-identical to [`sample_logits`]: same fold order for the max, same
/// per-element normalisation, same single RNG draw.
pub fn sample_logits_into<R: Rng>(
    logits: &[f32],
    opts: &SampleOptions,
    rng: &mut R,
    scratch: &mut Vec<f32>,
) -> usize {
    assert!(!logits.is_empty(), "empty logits");
    if opts.temperature <= 0.0 {
        return argmax(logits);
    }
    if opts.top_k > 0 && opts.top_k < logits.len() {
        // Top-k path: needs a sort, so the index vector is unavoidable.
        let mut indexed: Vec<(usize, f32)> = logits.iter().copied().enumerate().collect();
        indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
        indexed.truncate(opts.top_k);
        let max = indexed.iter().map(|(_, v)| *v).fold(f32::NEG_INFINITY, f32::max);
        scratch.clear();
        scratch.extend(indexed.iter().map(|(_, v)| ((v - max) / opts.temperature).exp()));
        let total: f32 = scratch.iter().sum();
        for w in scratch.iter_mut() {
            *w /= total;
        }
        let mut roll: f32 = rng.random();
        for ((id, _), w) in indexed.iter().zip(scratch.iter()) {
            roll -= w;
            if roll <= 0.0 {
                return *id;
            }
        }
        return indexed.last().map(|(id, _)| *id).unwrap_or(0);
    }
    // Dense path: candidate order is index order, no sort needed.
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    scratch.clear();
    scratch.extend(logits.iter().map(|v| ((v - max) / opts.temperature).exp()));
    let total: f32 = scratch.iter().sum();
    for w in scratch.iter_mut() {
        *w /= total;
    }
    let mut roll: f32 = rng.random();
    for (id, w) in scratch.iter().enumerate() {
        roll -= w;
        if roll <= 0.0 {
            return id;
        }
    }
    logits.len() - 1
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zero_temperature_is_argmax() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let logits = vec![0.1, 3.0, -1.0, 2.9];
        let opts = SampleOptions { temperature: 0.0, top_k: 0 };
        for _ in 0..10 {
            assert_eq!(sample_logits(&logits, &opts, &mut rng), 1);
        }
    }

    #[test]
    fn low_temperature_concentrates() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let logits = vec![0.0, 5.0, 0.0];
        let opts = SampleOptions { temperature: 0.2, top_k: 0 };
        let hits = (0..200).filter(|_| sample_logits(&logits, &opts, &mut rng) == 1).count();
        assert!(hits > 190, "got {hits}/200");
    }

    #[test]
    fn high_temperature_spreads() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let logits = vec![0.0, 1.0, 0.0];
        let opts = SampleOptions { temperature: 5.0, top_k: 0 };
        let mut counts = [0usize; 3];
        for _ in 0..600 {
            counts[sample_logits(&logits, &opts, &mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "{counts:?}");
    }

    #[test]
    fn top_k_excludes_tail() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let logits = vec![10.0, 9.0, -50.0, -50.0];
        let opts = SampleOptions { temperature: 1.0, top_k: 2 };
        for _ in 0..100 {
            let s = sample_logits(&logits, &opts, &mut rng);
            assert!(s < 2, "sampled excluded token {s}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let logits: Vec<f32> = (0..50).map(|i| (i as f32 * 0.37).sin()).collect();
        let opts = SampleOptions { temperature: 0.9, top_k: 10 };
        let a: Vec<usize> = {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            (0..20).map(|_| sample_logits(&logits, &opts, &mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            (0..20).map(|_| sample_logits(&logits, &opts, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty logits")]
    fn empty_logits_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let _ = sample_logits(&[], &SampleOptions::default(), &mut rng);
    }
}
