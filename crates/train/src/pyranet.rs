//! The **PyraNet-Architecture** fine-tuning (paper §III-B, §IV-C second
//! experiment): hierarchical layer-by-layer training with loss weighting
//! and curriculum learning.
//!
//! "The fine-tuning process generally commences with the highest tier …
//! begins with data entries of basic complexity within the top tier,
//! followed by intermediate, advanced, and expert complexity levels in
//! sequence. This hierarchical structure is maintained across all tiers as
//! the fine-tuning progresses downward through the dataset" — with loss
//! weights 1.0, 0.8, 0.6, 0.4, 0.2, 0.1 per layer (Fig. 1-b).

use crate::data::{to_examples_cached, ExampleCache};
use crate::report::TrainReport;
use crate::sft::run_phase;
use crate::TrainConfig;
use pyranet_model::{Tokenizer, TransformerLm};
use pyranet_pipeline::{Layer, PyraNetDataset};
use pyranet_verilog::metrics::ComplexityTier;

/// The hierarchical loss-weighted curriculum trainer.
#[derive(Debug, Clone, Copy, Default)]
pub struct PyraNetTrainer;

impl PyraNetTrainer {
    /// Runs the full PyraNet schedule: 6 layers × 4 complexity tiers = 24
    /// sequential phases. Empty groups are recorded as explicit zero-step
    /// phases, so the report always has one entry per layer/tier.
    pub fn run(
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
    ) -> TrainReport {
        Self::run_cached(lm, tk, dataset, cfg, &ExampleCache::new())
    }

    /// [`PyraNetTrainer::run`] reusing a shared tokenized-example cache.
    pub fn run_cached(
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
        cache: &ExampleCache,
    ) -> TrainReport {
        let mut report = TrainReport::new("PyraNet-Architecture");
        for layer in Layer::ALL {
            let weight = layer.loss_weight();
            for tier in ComplexityTier::ALL {
                let group: Vec<_> =
                    dataset.iter().filter(|s| s.layer == layer && s.tier == tier).collect();
                let mut examples =
                    to_examples_cached(group.iter().copied(), tk, weight as f32, cache);
                let name = format!("{layer}/{tier}");
                run_phase(lm, &mut examples, cfg, &name, weight, &mut report);
            }
        }
        report
    }

    /// The phase schedule (layer, tier, weight) the trainer would execute —
    /// used by the Fig. 1-b regenerator and the tests.
    pub fn schedule() -> Vec<(Layer, ComplexityTier, f64)> {
        let mut out = Vec::with_capacity(24);
        for layer in Layer::ALL {
            for tier in ComplexityTier::ALL {
                out.push((layer, tier, layer.loss_weight()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::build_tokenizer;
    use pyranet_corpus::CorpusBuilder;
    use pyranet_model::ModelConfig;
    use pyranet_pipeline::Pipeline;

    #[test]
    fn schedule_is_top_down_and_curriculum_ordered() {
        let sched = PyraNetTrainer::schedule();
        assert_eq!(sched.len(), 24);
        assert_eq!(sched[0], (Layer::L1, ComplexityTier::Basic, 1.0));
        assert_eq!(sched[3], (Layer::L1, ComplexityTier::Expert, 1.0));
        assert_eq!(sched[4], (Layer::L2, ComplexityTier::Basic, 0.8));
        assert_eq!(sched[23], (Layer::L6, ComplexityTier::Expert, 0.1));
        // weights never increase along the schedule
        for w in sched.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn trainer_visits_layers_in_order_with_paper_weights() {
        let pool = CorpusBuilder::new(22).scraped_files(150).build();
        let ds = Pipeline::new().run(pool.samples).dataset;
        let tk = build_tokenizer(ds.iter());
        let cfg = ModelConfig {
            name: "tiny".into(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_seq: 128,
            learning_rate: 3e-3,
            seed: 5,
        };
        let mut lm = TransformerLm::new(cfg, tk.vocab_size());
        let tcfg =
            TrainConfig { epochs: 1, max_examples_per_phase: Some(6), ..TrainConfig::default() };
        let report = PyraNetTrainer::run(&mut lm, &tk, &ds, &tcfg);
        // every scheduled layer/tier gets a report entry, even when its
        // group is empty (those record zero examples and zero steps)
        assert_eq!(report.phases.len(), 24, "one phase per layer/tier");
        for p in &report.phases {
            if p.examples == 0 {
                assert_eq!(p.steps, 0, "empty groups take no optimizer steps");
                assert_eq!(p.first_loss, 0.0);
                assert_eq!(p.last_loss, 0.0);
            } else {
                assert!(p.steps > 0, "non-empty group {} reported zero steps", p.name);
            }
        }
        assert!(report.phases.iter().any(|p| p.examples > 0), "some groups must train");
        // per-phase weights must be one of the paper's six values and
        // non-increasing across the run
        let allowed = [1.0, 0.8, 0.6, 0.4, 0.2, 0.1];
        let mut prev = f64::INFINITY;
        for p in &report.phases {
            assert!(allowed.iter().any(|w| (p.loss_weight - w).abs() < 1e-9), "{p:?}");
            assert!(p.loss_weight <= prev);
            prev = p.loss_weight;
        }
        // the run covers at least three distinct layers for this pool
        let distinct: std::collections::HashSet<String> = report
            .phases
            .iter()
            .map(|p| p.name.split('/').next().unwrap_or("").to_owned())
            .collect();
        assert!(distinct.len() >= 3, "{distinct:?}");
    }
}
