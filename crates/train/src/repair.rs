//! Repair fine-tuning — (defect-injected module, clean original) pairs.
//!
//! The corpus builder's defect injectors ([`pyranet_corpus::defect`]) exist
//! to make *broken* pool files; this recipe turns them around into a
//! supervised repair workload: each curated sample is re-broken with a
//! known injector and the model is trained to emit the clean original from
//! the broken text plus the sample's description. The checked injector
//! variants report whether they actually mutated, so every emitted pair
//! carries the hard guarantee `broken != clean` — a pair where the
//! "defect" is a no-op would teach the model to copy its input.

use crate::data::{to_examples_cached, ExampleCache};
use crate::report::TrainReport;
use crate::sft::run_phase;
use crate::TrainConfig;
use pyranet_corpus::defect;
use pyranet_exec::stream_seed;
use pyranet_model::{Tokenizer, TransformerLm};
use pyranet_pipeline::{CuratedSample, PyraNetDataset};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which injector family produced a pair's broken side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RepairDefect {
    /// A syntax defect ([`defect::inject_syntax_error_checked`]).
    Syntax,
    /// A phantom-module dependency issue
    /// ([`defect::inject_dependency_issue_checked`]).
    Dependency,
}

/// One supervised repair example: broken text in, clean original out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairPair {
    /// Id of the curated sample the pair was derived from.
    pub id: u64,
    /// The sample's natural-language description.
    pub description: String,
    /// Defect-injected source (always differs from `clean`).
    pub broken: String,
    /// The clean original the model must reproduce.
    pub clean: String,
    /// Injector family used.
    pub defect: RepairDefect,
}

/// Stream tag separating repair-pair RNG from every other consumer of the
/// training seed.
const STREAM_REPAIR: u64 = 0x5250_4152; // "RPAR"

/// Builds repair pairs for every curated sample, skipping samples whose
/// source already has a dependency issue (their "clean" side is not clean).
///
/// Sample `i` draws from its own RNG stream keyed by its id, so the pair
/// set is independent of dataset iteration order and thread count. Each
/// sample alternates a syntax or dependency injection by coin flip; the
/// checked injectors' `mutated` flag gates emission, so `broken != clean`
/// holds for every returned pair.
pub fn repair_pairs(dataset: &PyraNetDataset, seed: u64) -> Vec<RepairPair> {
    let master = stream_seed(seed, STREAM_REPAIR);
    dataset
        .iter()
        .filter(|s| !s.dependency_issue)
        .filter_map(|s| {
            let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(master, s.id));
            let (defect, injection) = if rng.random::<f64>() < 0.5 {
                (RepairDefect::Syntax, defect::inject_syntax_error_checked(&s.source, &mut rng))
            } else {
                (
                    RepairDefect::Dependency,
                    defect::inject_dependency_issue_checked(&s.source, &mut rng),
                )
            };
            injection.mutated.then(|| RepairPair {
                id: s.id,
                description: s.description.clone(),
                broken: injection.source,
                clean: s.source.clone(),
                defect,
            })
        })
        .collect()
}

/// The prompt text for a repair pair: task framing, the description, and
/// the broken source the model must fix.
pub fn repair_prompt(pair: &RepairPair) -> String {
    format!(
        "Repair the following broken Verilog module. {} Broken code: {}",
        pair.description, pair.broken
    )
}

/// Writes repair pairs as JSONL (one [`RepairPair`] object per line) — the
/// export format for training outside this crate.
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn export_repair_jsonl(pairs: &[RepairPair], path: &std::path::Path) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for p in pairs {
        let line = serde_json::to_string(p)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// The repair SFT recipe: one phase over all repair pairs at weight 1.0.
#[derive(Debug, Clone, Copy, Default)]
pub struct RepairTrainer;

impl RepairTrainer {
    /// Runs the recipe, mutating `lm` in place.
    pub fn run(
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
    ) -> TrainReport {
        Self::run_cached(lm, tk, dataset, cfg, &ExampleCache::new())
    }

    /// [`RepairTrainer::run`] reusing a shared tokenized-example cache.
    ///
    /// Pairs are fed through the cache as synthetic curated samples whose
    /// description is the full repair prompt — the cache keys on a content
    /// hash, so repair encodings never collide with the plain-SFT
    /// encodings of the same sample ids.
    pub fn run_cached(
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
        cache: &ExampleCache,
    ) -> TrainReport {
        let pairs = repair_pairs(dataset, cfg.seed);
        let by_id: std::collections::HashMap<u64, &CuratedSample> =
            dataset.iter().map(|s| (s.id, s)).collect();
        let synthetic: Vec<CuratedSample> = pairs
            .iter()
            .map(|p| {
                let base = by_id[&p.id];
                CuratedSample {
                    description: repair_prompt(p),
                    source: p.clean.clone(),
                    ..base.clone()
                }
            })
            .collect();
        let mut examples = to_examples_cached(synthetic.iter(), tk, 1.0, cache);
        let mut report = TrainReport::new("repair (defect-injected -> clean SFT)");
        run_phase(lm, &mut examples, cfg, "repair", 1.0, &mut report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::build_tokenizer;
    use pyranet_corpus::CorpusBuilder;
    use pyranet_model::ModelConfig;
    use pyranet_pipeline::Pipeline;

    fn small_dataset() -> PyraNetDataset {
        let pool = CorpusBuilder::new(31).scraped_files(150).llm_generation(false).build();
        Pipeline::new().run(pool.samples).dataset
    }

    #[test]
    fn every_pair_differs_and_skips_dependency_sources() {
        let ds = small_dataset();
        let pairs = repair_pairs(&ds, 7);
        assert!(!pairs.is_empty());
        let dep_ids: std::collections::HashSet<u64> =
            ds.iter().filter(|s| s.dependency_issue).map(|s| s.id).collect();
        for p in &pairs {
            assert_ne!(p.broken, p.clean, "pair {} is a no-op injection", p.id);
            assert!(!dep_ids.contains(&p.id), "pair {} built on a dependency-broken base", p.id);
        }
        // Both injector families show up across a realistic dataset.
        assert!(pairs.iter().any(|p| p.defect == RepairDefect::Syntax));
        assert!(pairs.iter().any(|p| p.defect == RepairDefect::Dependency));
    }

    #[test]
    fn pairs_are_deterministic_in_seed() {
        let ds = small_dataset();
        assert_eq!(repair_pairs(&ds, 7), repair_pairs(&ds, 7));
        assert_ne!(repair_pairs(&ds, 7), repair_pairs(&ds, 8), "seed must matter");
    }

    #[test]
    fn repair_training_improves_loss() {
        let ds = small_dataset();
        let tk = build_tokenizer(ds.iter());
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            max_examples_per_phase: Some(16),
            ..TrainConfig::default()
        };
        let mcfg = ModelConfig {
            name: "tiny".into(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_seq: 256,
            learning_rate: 3e-3,
            seed: 5,
        };
        let mut lm = TransformerLm::new(mcfg, tk.vocab_size());
        let report = RepairTrainer::run(&mut lm, &tk, &ds, &cfg);
        assert_eq!(report.phases.len(), 1);
        let p = &report.phases[0];
        assert!(p.steps > 0);
        assert!(p.last_loss < p.first_loss, "{} -> {}", p.first_loss, p.last_loss);
    }

    #[test]
    fn jsonl_export_round_trips() {
        let ds = small_dataset();
        let pairs: Vec<RepairPair> = repair_pairs(&ds, 7).into_iter().take(5).collect();
        let path =
            std::env::temp_dir().join(format!("pyranet-repair-{}.jsonl", std::process::id()));
        export_repair_jsonl(&pairs, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: Vec<RepairPair> =
            text.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
        assert_eq!(pairs, back);
        std::fs::remove_file(&path).ok();
    }
}
