//! Comparator fine-tuning recipes (paper Table I rows): MG-Verilog,
//! RTLCoder, and OriGen, each re-implemented on our common substrate.
//!
//! The paper compares against released *models*; what distinguishes them is
//! their data recipe, so we reproduce the recipes:
//!
//! * **MG-Verilog** — multi-grained descriptions: each sample trains under
//!   several description granularities (high-level summary + detailed),
//!   flat SFT, no quality tiers.
//! * **RTLCoder** — quality feedback during training: samples scored below
//!   a quality threshold are dropped; flat SFT on the survivors.
//! * **OriGen** — code-to-code augmentation: each sample is additionally
//!   trained under a re-rendered (pretty-printed) variant of its code; the
//!   self-reflection loop is omitted, as it is in the paper's comparison.

use crate::data::{prompt_text, to_examples_cached, ExampleCache};
use crate::report::TrainReport;
use crate::sft::run_phase;
use crate::TrainConfig;
use pyranet_model::transformer::TrainExample;
use pyranet_model::{Tokenizer, TransformerLm};
use pyranet_pipeline::PyraNetDataset;

/// MG-Verilog: flat SFT with multi-grained descriptions.
#[derive(Debug, Clone, Copy, Default)]
pub struct MgVerilog;

impl MgVerilog {
    /// Runs the recipe.
    pub fn run(
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
    ) -> TrainReport {
        Self::run_cached(lm, tk, dataset, cfg, &ExampleCache::new())
    }

    /// [`MgVerilog::run`] reusing a shared tokenized-example cache for the
    /// fine-grained encodings (the coarse variants are recipe-local).
    pub fn run_cached(
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
        cache: &ExampleCache,
    ) -> TrainReport {
        let mut examples: Vec<TrainExample> = Vec::new();
        for s in dataset.iter() {
            // fine-grained description (as curated)
            examples.push(cache.example(s, tk, 1.0));
            // coarse-grained summary: first clause of the description
            let coarse: String =
                s.description.split(&[',', '.'][..]).next().unwrap_or("").to_owned();
            if !coarse.is_empty() {
                let (ids, code_start) = tk.encode_pair(&prompt_text(&coarse, &s.source), &s.source);
                examples.push(TrainExample { ids, code_start, weight: 1.0 });
            }
        }
        let mut report = TrainReport::new("MG-Verilog (multi-grained SFT)");
        run_phase(lm, &mut examples, cfg, "mg-verilog", 1.0, &mut report);
        report
    }
}

/// RTLCoder: drop low-quality samples, flat SFT on the rest.
#[derive(Debug, Clone, Copy)]
pub struct RtlCoder {
    /// Minimum rank a sample needs to be kept (quality feedback).
    pub min_rank: u8,
}

impl Default for RtlCoder {
    fn default() -> Self {
        RtlCoder { min_rank: 10 }
    }
}

impl RtlCoder {
    /// Runs the recipe.
    pub fn run(
        &self,
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
    ) -> TrainReport {
        self.run_cached(lm, tk, dataset, cfg, &ExampleCache::new())
    }

    /// [`RtlCoder::run`] reusing a shared tokenized-example cache.
    pub fn run_cached(
        &self,
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
        cache: &ExampleCache,
    ) -> TrainReport {
        let kept: Vec<_> = dataset
            .iter()
            .filter(|s| s.rank.value() >= self.min_rank && !s.dependency_issue)
            .collect();
        let mut examples = to_examples_cached(kept.iter().copied(), tk, 1.0, cache);
        let mut report = TrainReport::new("RTLCoder (quality-feedback SFT)");
        run_phase(lm, &mut examples, cfg, "rtlcoder", 1.0, &mut report);
        report
    }
}

/// OriGen: code-to-code augmentation (each kept sample also trains under a
/// canonicalised re-render of its code), flat SFT, no self-reflection.
#[derive(Debug, Clone, Copy)]
pub struct OriGen {
    /// Quality floor applied before augmentation (OriGen's pipeline also
    /// filters aggressively).
    pub min_rank: u8,
}

impl Default for OriGen {
    fn default() -> Self {
        OriGen { min_rank: 12 }
    }
}

impl OriGen {
    /// Runs the recipe.
    pub fn run(
        &self,
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
    ) -> TrainReport {
        self.run_cached(lm, tk, dataset, cfg, &ExampleCache::new())
    }

    /// [`OriGen::run`] reusing a shared tokenized-example cache for the
    /// primary encodings (the re-rendered variants are recipe-local).
    pub fn run_cached(
        &self,
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
        cache: &ExampleCache,
    ) -> TrainReport {
        let mut examples: Vec<TrainExample> = Vec::new();
        for s in dataset.iter() {
            if s.rank.value() < self.min_rank || s.dependency_issue {
                continue;
            }
            examples.push(cache.example(s, tk, 1.0));
            let prompt = prompt_text(&s.description, &s.source);
            // code-to-code augmentation: canonical pretty-printed variant
            if let Ok(module) = pyranet_verilog::parse_module(&s.source) {
                let rendered = pyranet_verilog::pretty::print_module(&module);
                if rendered != s.source {
                    let (ids, code_start) = tk.encode_pair(&prompt, &rendered);
                    examples.push(TrainExample { ids, code_start, weight: 1.0 });
                }
            }
        }
        let mut report = TrainReport::new("OriGen (code-to-code augmented SFT)");
        run_phase(lm, &mut examples, cfg, "origen", 1.0, &mut report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::build_tokenizer;
    use pyranet_corpus::CorpusBuilder;
    use pyranet_model::ModelConfig;
    use pyranet_pipeline::Pipeline;

    fn setup() -> (PyraNetDataset, Tokenizer, TransformerLm) {
        let pool = CorpusBuilder::new(23).scraped_files(150).build();
        let ds = Pipeline::new().run(pool.samples).dataset;
        let tk = build_tokenizer(ds.iter());
        let cfg = ModelConfig {
            name: "tiny".into(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_seq: 128,
            learning_rate: 3e-3,
            seed: 5,
        };
        let lm = TransformerLm::new(cfg, tk.vocab_size());
        (ds, tk, lm)
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig { epochs: 1, max_examples_per_phase: Some(10), ..TrainConfig::default() }
    }

    #[test]
    fn mg_verilog_multiplies_examples() {
        let (ds, tk, mut lm) = setup();
        // count before capping: strip the cap to observe augmentation
        let cfg = TrainConfig { epochs: 1, max_examples_per_phase: None, ..TrainConfig::default() };
        let report = MgVerilog::run(&mut lm, &tk, &ds, &cfg);
        assert!(
            report.total_examples() > ds.len(),
            "multi-grained descriptions add examples: {} vs {}",
            report.total_examples(),
            ds.len()
        );
    }

    #[test]
    fn rtlcoder_filters_low_quality() {
        let (ds, tk, mut lm) = setup();
        let cfg = TrainConfig { epochs: 1, max_examples_per_phase: None, ..TrainConfig::default() };
        let report = RtlCoder::default().run(&mut lm, &tk, &ds, &cfg);
        let kept = ds.iter().filter(|s| s.rank.value() >= 10 && !s.dependency_issue).count();
        assert_eq!(report.total_examples(), kept);
        assert!(kept < ds.len(), "something must be filtered");
    }

    #[test]
    fn origen_augments_with_rerendered_code() {
        let (ds, tk, mut lm) = setup();
        let cfg = TrainConfig { epochs: 1, max_examples_per_phase: None, ..TrainConfig::default() };
        let report = OriGen::default().run(&mut lm, &tk, &ds, &cfg);
        let kept = ds.iter().filter(|s| s.rank.value() >= 12 && !s.dependency_issue).count();
        assert!(report.total_examples() > kept, "augmentation adds variants");
        assert!(report.total_examples() <= kept * 2);
    }

    #[test]
    fn all_baselines_train_without_panicking() {
        let (ds, tk, mut lm) = setup();
        let cfg = quick_cfg();
        let r1 = MgVerilog::run(&mut lm, &tk, &ds, &cfg);
        let r2 = RtlCoder::default().run(&mut lm, &tk, &ds, &cfg);
        let r3 = OriGen::default().run(&mut lm, &tk, &ds, &cfg);
        for r in [r1, r2, r3] {
            assert_eq!(r.phases.len(), 1);
        }
    }
}
