//! Dataset → training-example conversion.

use pyranet_model::transformer::TrainExample;
use pyranet_model::Tokenizer;
use pyranet_pipeline::CuratedSample;
pub use pyranet_verilog::pretty::interface_line;

/// The full prompt text for a (description, source) pair: the description
/// plus the interface line when the source parses.
pub fn prompt_text(description: &str, source: &str) -> String {
    match pyranet_verilog::parse_module(source) {
        Ok(module) => format!("{description} Interface: {}", interface_line(&module)),
        Err(_) => description.to_owned(),
    }
}

/// Builds a tokenizer over the descriptions and sources of a dataset
/// (plus the special-token floor).
pub fn build_tokenizer<'s, I>(samples: I) -> Tokenizer
where
    I: IntoIterator<Item = &'s CuratedSample>,
{
    let mut texts: Vec<&str> = vec!["Interface:"];
    for s in samples {
        texts.push(&s.description);
        texts.push(&s.source);
    }
    Tokenizer::build(texts, 1)
}

/// Converts curated samples into training examples with a uniform loss
/// `weight`.
pub fn to_examples<'s, I>(samples: I, tk: &Tokenizer, weight: f32) -> Vec<TrainExample>
where
    I: IntoIterator<Item = &'s CuratedSample>,
{
    samples
        .into_iter()
        .map(|s| {
            let prompt = prompt_text(&s.description, &s.source);
            let (ids, code_start) = tk.encode_pair(&prompt, &s.source);
            TrainExample { ids, code_start, weight }
        })
        .collect()
}

/// Memoizes tokenized `(ids, code_start)` pairs so the same sample
/// re-encoded across recipes, phases, or epochs is tokenized exactly once
/// (tokenizing re-parses the Verilog source for the interface line, which
/// dominates example construction).
///
/// Entries are keyed by sample id **and** a content hash of the
/// (description, source) pair, so datasets with permuted labels (e.g. the
/// erroneous-dataset ablation) never collide with their clean originals.
/// Interior locking lets `&self` contexts (e.g. an experiment driver)
/// share one cache across recipe runs.
///
/// One cache must only ever be used with one tokenizer.
#[derive(Debug, Default)]
pub struct ExampleCache {
    entries: parking_lot::Mutex<CacheMap>,
}

/// (sample id, content hash) → cached `(ids, code_start)` encoding.
type CacheMap = std::collections::HashMap<(u64, u64), (Vec<usize>, usize)>;

impl ExampleCache {
    /// An empty cache.
    pub fn new() -> ExampleCache {
        ExampleCache::default()
    }

    /// Number of cached encodings.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    fn key(s: &CuratedSample) -> (u64, u64) {
        // FNV-1a over the text pair; combined with the id this makes
        // collisions across label-permuted variants practically impossible.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.description.bytes().chain([0u8]).chain(s.source.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (s.id, h)
    }

    /// The training example for `s` at loss `weight`, encoding on miss.
    pub fn example(&self, s: &CuratedSample, tk: &Tokenizer, weight: f32) -> TrainExample {
        let key = Self::key(s);
        if let Some((ids, code_start)) = self.entries.lock().get(&key).cloned() {
            return TrainExample { ids, code_start, weight };
        }
        let prompt = prompt_text(&s.description, &s.source);
        let (ids, code_start) = tk.encode_pair(&prompt, &s.source);
        self.entries.lock().insert(key, (ids.clone(), code_start));
        TrainExample { ids, code_start, weight }
    }
}

impl Clone for ExampleCache {
    fn clone(&self) -> Self {
        ExampleCache { entries: parking_lot::Mutex::new(self.entries.lock().clone()) }
    }
}

/// [`to_examples`] through an [`ExampleCache`]: identical output, but
/// repeated conversions of the same samples skip re-encoding.
pub fn to_examples_cached<'s, I>(
    samples: I,
    tk: &Tokenizer,
    weight: f32,
    cache: &ExampleCache,
) -> Vec<TrainExample>
where
    I: IntoIterator<Item = &'s CuratedSample>,
{
    samples.into_iter().map(|s| cache.example(s, tk, weight)).collect()
}

/// Streams a sharded dataset export (see `pyranet_pipeline::persist`)
/// shard by shard, converting each shard's samples into training examples
/// as it goes. At most one shard's samples are alive at a time, so a
/// dataset far larger than memory can feed training as long as its
/// *examples* fit — the ceiling drops from "whole corpus as JSONL +
/// parsed samples + examples" to "examples + one shard".
///
/// Each shard is checksum-verified on read; corruption aborts the load
/// with the offending file named rather than training on damaged data.
///
/// # Errors
///
/// Manifest/shard I/O failures and integrity mismatches.
pub fn to_examples_from_shards(
    dir: &std::path::Path,
    tk: &Tokenizer,
    weight: f32,
) -> std::io::Result<Vec<TrainExample>> {
    let mut stream = pyranet_pipeline::ShardStream::open(dir)?;
    let mut out = Vec::with_capacity(stream.manifest().total_samples as usize);
    while let Some(shard) = stream.next_shard() {
        out.extend(to_examples(shard?.iter(), tk, weight));
    }
    Ok(out)
}

/// [`to_examples_from_shards`] through an [`ExampleCache`]: identical
/// output, shard-at-a-time memory, re-encoding skipped on cache hits.
///
/// # Errors
///
/// Manifest/shard I/O failures and integrity mismatches.
pub fn to_examples_from_shards_cached(
    dir: &std::path::Path,
    tk: &Tokenizer,
    weight: f32,
    cache: &ExampleCache,
) -> std::io::Result<Vec<TrainExample>> {
    let mut stream = pyranet_pipeline::ShardStream::open(dir)?;
    let mut out = Vec::with_capacity(stream.manifest().total_samples as usize);
    while let Some(shard) = stream.next_shard() {
        out.extend(to_examples_cached(shard?.iter(), tk, weight, cache));
    }
    Ok(out)
}

/// Deterministic Fisher–Yates shuffle driven by a seed (kept here so all
/// trainers share identical shuffling semantics).
pub fn shuffle_examples(examples: &mut [TrainExample], seed: u64) {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    examples.shuffle(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_pipeline::{Layer, Rank};
    use pyranet_verilog::metrics::ComplexityTier;

    fn sample(id: u64) -> CuratedSample {
        CuratedSample {
            id,
            source: format!("module m{id}(input a, output y); assign y = a; endmodule"),
            description: format!("a pass-through wire number {id}"),
            rank: Rank::new(20),
            tier: ComplexityTier::Basic,
            layer: Layer::L1,
            dependency_issue: false,
        }
    }

    #[test]
    fn tokenizer_covers_dataset_words() {
        let samples: Vec<CuratedSample> = (0..3).map(sample).collect();
        let tk = build_tokenizer(samples.iter());
        let ids = tk.encode("module m0 assign endmodule");
        assert!(ids.iter().all(|&i| i != pyranet_model::tokenizer::UNK));
    }

    #[test]
    fn examples_carry_weight_and_layout() {
        let samples: Vec<CuratedSample> = (0..2).map(sample).collect();
        let tk = build_tokenizer(samples.iter());
        let exs = to_examples(samples.iter(), &tk, 0.8);
        assert_eq!(exs.len(), 2);
        for ex in &exs {
            assert!((ex.weight - 0.8).abs() < 1e-6);
            assert!(ex.code_start > 1);
            assert_eq!(ex.ids[0], pyranet_model::tokenizer::BOS);
        }
    }

    #[test]
    fn cached_examples_match_uncached_and_encode_once() {
        let samples: Vec<CuratedSample> = (0..6).map(sample).collect();
        let tk = build_tokenizer(samples.iter());
        let cache = ExampleCache::new();
        let direct = to_examples(samples.iter(), &tk, 0.6);
        let cached = to_examples_cached(samples.iter(), &tk, 0.6, &cache);
        assert_eq!(direct, cached);
        assert_eq!(cache.len(), 6);
        // Re-converting at another weight reuses every entry and only
        // restamps the weight.
        let reweighted = to_examples_cached(samples.iter(), &tk, 1.0, &cache);
        assert_eq!(cache.len(), 6, "no new encodings on the second pass");
        assert_eq!(reweighted[0].ids, direct[0].ids);
        assert!((reweighted[0].weight - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cache_distinguishes_permuted_labels() {
        let samples: Vec<CuratedSample> = (0..2).map(sample).collect();
        let tk = build_tokenizer(samples.iter());
        let cache = ExampleCache::new();
        let _ = to_examples_cached(samples.iter(), &tk, 1.0, &cache);
        let mut swapped = samples.clone();
        let d0 = swapped[0].description.clone();
        swapped[0].description = swapped[1].description.clone();
        swapped[1].description = d0;
        let from_cache = to_examples_cached(swapped.iter(), &tk, 1.0, &cache);
        let direct = to_examples(swapped.iter(), &tk, 1.0);
        assert_eq!(from_cache, direct, "permuted labels must not hit stale entries");
        assert_eq!(cache.len(), 4, "swapped pairs are distinct cache entries");
    }

    #[test]
    fn sharded_streaming_matches_materialized_examples() {
        use pyranet_pipeline::{PyraNetDataset, ShardSpec};
        let samples: Vec<CuratedSample> = (0..25).map(sample).collect();
        let ds: PyraNetDataset = samples.iter().cloned().collect();
        let tk = build_tokenizer(samples.iter());
        let dir = std::env::temp_dir().join(format!("pyranet-train-shards-{}", std::process::id()));
        ds.to_shards(&dir, ShardSpec::MaxSamples(7), &pyranet_exec::ExecConfig::new()).unwrap();
        let direct = to_examples(samples.iter(), &tk, 0.8);
        let streamed = to_examples_from_shards(&dir, &tk, 0.8).unwrap();
        assert_eq!(direct, streamed);
        let cache = ExampleCache::new();
        let streamed_cached = to_examples_from_shards_cached(&dir, &tk, 0.8, &cache).unwrap();
        assert_eq!(direct, streamed_cached);
        assert_eq!(cache.len(), samples.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_streaming_propagates_integrity_failures() {
        use pyranet_pipeline::{PyraNetDataset, ShardSpec};
        let samples: Vec<CuratedSample> = (0..10).map(sample).collect();
        let ds: PyraNetDataset = samples.iter().cloned().collect();
        let tk = build_tokenizer(samples.iter());
        let dir =
            std::env::temp_dir().join(format!("pyranet-train-badshards-{}", std::process::id()));
        let manifest =
            ds.to_shards(&dir, ShardSpec::MaxSamples(4), &pyranet_exec::ExecConfig::new()).unwrap();
        let victim = dir.join(&manifest.shards[1].file);
        let mut bytes = std::fs::read(&victim).unwrap();
        bytes[0] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();
        let err = to_examples_from_shards(&dir, &tk, 1.0).unwrap_err();
        assert!(err.to_string().contains(&manifest.shards[1].file), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shuffle_is_deterministic() {
        let samples: Vec<CuratedSample> = (0..20).map(sample).collect();
        let tk = build_tokenizer(samples.iter());
        let mut a = to_examples(samples.iter(), &tk, 1.0);
        let mut b = a.clone();
        shuffle_examples(&mut a, 5);
        shuffle_examples(&mut b, 5);
        assert_eq!(a, b);
        let mut c = to_examples(samples.iter(), &tk, 1.0);
        shuffle_examples(&mut c, 6);
        assert_ne!(a, c, "different seeds permute differently");
    }
}
