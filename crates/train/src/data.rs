//! Dataset → training-example conversion.

use pyranet_model::transformer::TrainExample;
use pyranet_model::Tokenizer;
use pyranet_pipeline::CuratedSample;
pub use pyranet_verilog::pretty::interface_line;

/// The full prompt text for a (description, source) pair: the description
/// plus the interface line when the source parses.
pub fn prompt_text(description: &str, source: &str) -> String {
    match pyranet_verilog::parse_module(source) {
        Ok(module) => format!("{description} Interface: {}", interface_line(&module)),
        Err(_) => description.to_owned(),
    }
}

/// Builds a tokenizer over the descriptions and sources of a dataset
/// (plus the special-token floor).
pub fn build_tokenizer<'s, I>(samples: I) -> Tokenizer
where
    I: IntoIterator<Item = &'s CuratedSample>,
{
    let mut texts: Vec<&str> = vec!["Interface:"];
    for s in samples {
        texts.push(&s.description);
        texts.push(&s.source);
    }
    Tokenizer::build(texts, 1)
}

/// Converts curated samples into training examples with a uniform loss
/// `weight`.
pub fn to_examples<'s, I>(samples: I, tk: &Tokenizer, weight: f32) -> Vec<TrainExample>
where
    I: IntoIterator<Item = &'s CuratedSample>,
{
    samples
        .into_iter()
        .map(|s| {
            let prompt = prompt_text(&s.description, &s.source);
            let (ids, code_start) = tk.encode_pair(&prompt, &s.source);
            TrainExample { ids, code_start, weight }
        })
        .collect()
}

/// Deterministic Fisher–Yates shuffle driven by a seed (kept here so all
/// trainers share identical shuffling semantics).
pub fn shuffle_examples(examples: &mut [TrainExample], seed: u64) {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    examples.shuffle(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_pipeline::{Layer, Rank};
    use pyranet_verilog::metrics::ComplexityTier;

    fn sample(id: u64) -> CuratedSample {
        CuratedSample {
            id,
            source: format!("module m{id}(input a, output y); assign y = a; endmodule"),
            description: format!("a pass-through wire number {id}"),
            rank: Rank::new(20),
            tier: ComplexityTier::Basic,
            layer: Layer::L1,
            dependency_issue: false,
        }
    }

    #[test]
    fn tokenizer_covers_dataset_words() {
        let samples: Vec<CuratedSample> = (0..3).map(sample).collect();
        let tk = build_tokenizer(samples.iter());
        let ids = tk.encode("module m0 assign endmodule");
        assert!(ids.iter().all(|&i| i != pyranet_model::tokenizer::UNK));
    }

    #[test]
    fn examples_carry_weight_and_layout() {
        let samples: Vec<CuratedSample> = (0..2).map(sample).collect();
        let tk = build_tokenizer(samples.iter());
        let exs = to_examples(samples.iter(), &tk, 0.8);
        assert_eq!(exs.len(), 2);
        for ex in &exs {
            assert!((ex.weight - 0.8).abs() < 1e-6);
            assert!(ex.code_start > 1);
            assert_eq!(ex.ids[0], pyranet_model::tokenizer::BOS);
        }
    }

    #[test]
    fn shuffle_is_deterministic() {
        let samples: Vec<CuratedSample> = (0..20).map(sample).collect();
        let tk = build_tokenizer(samples.iter());
        let mut a = to_examples(samples.iter(), &tk, 1.0);
        let mut b = a.clone();
        shuffle_examples(&mut a, 5);
        shuffle_examples(&mut b, 5);
        assert_eq!(a, b);
        let mut c = to_examples(samples.iter(), &tk, 1.0);
        shuffle_examples(&mut c, 6);
        assert_ne!(a, c, "different seeds permute differently");
    }
}
