//! Base-model pre-training.
//!
//! The paper's bases (CodeLlama-7B/13B, DeepSeek-Coder-7B) arrive already
//! knowing some Verilog — their un-fine-tuned VerilogEval-Machine pass@1 is
//! 41.9 / 48.6 / 55.2. We reproduce that by pre-training each base on a
//! generic (description, code) corpus for a budget that scales with the
//! base's Table I baseline strength: more budget ⇒ stronger baseline, which
//! preserves the 7B < 13B < DeepSeek ordering.

use crate::data::{shuffle_examples, to_examples_cached, ExampleCache};
use crate::TrainConfig;
use pyranet_exec::ExecConfig;
use pyranet_model::{Adam, Tokenizer, TransformerLm};
use pyranet_pipeline::PyraNetDataset;

/// Pre-training budget for one base model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PretrainBudget {
    /// Number of (description, code) pairs drawn from the generic corpus.
    pub pairs: usize,
    /// Passes over those pairs.
    pub epochs: usize,
}

/// Budget that reproduces the Table I baseline ordering for a base name.
pub fn budget_for(base_name: &str) -> PretrainBudget {
    if base_name.contains("13B") {
        PretrainBudget { pairs: 400, epochs: 6 }
    } else if base_name.contains("DeepSeek") {
        PretrainBudget { pairs: 440, epochs: 6 }
    } else {
        PretrainBudget { pairs: 320, epochs: 6 }
    }
}

/// Pre-trains `lm` on pairs drawn from `generic` (full fine-tune, weight
/// 1.0, no LoRA — this is the "already released checkpoint" step).
pub fn pretrain(
    lm: &mut TransformerLm,
    tk: &Tokenizer,
    generic: &PyraNetDataset,
    budget: PretrainBudget,
    cfg: &TrainConfig,
) -> f32 {
    pretrain_cached(lm, tk, generic, budget, cfg, &ExampleCache::new())
}

/// [`pretrain`] reusing a shared tokenized-example cache.
pub fn pretrain_cached(
    lm: &mut TransformerLm,
    tk: &Tokenizer,
    generic: &PyraNetDataset,
    budget: PretrainBudget,
    cfg: &TrainConfig,
    cache: &ExampleCache,
) -> f32 {
    let mut examples = to_examples_cached(generic.iter(), tk, 1.0, cache);
    shuffle_examples(&mut examples, lm.cfg.seed);
    examples.truncate(budget.pairs);
    let exec = ExecConfig::new().threads(cfg.threads);
    let mut opt = Adam::new(lm.trainable_count(), cfg.learning_rate);
    let mut last = 0.0;
    for _ in 0..budget.epochs {
        for batch in examples.chunks(cfg.batch_size) {
            if let Some(loss) = lm.train_step_with(batch, &mut opt, &exec) {
                last = loss;
            }
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{build_tokenizer, to_examples};
    use pyranet_corpus::CorpusBuilder;
    use pyranet_model::ModelConfig;
    use pyranet_pipeline::Pipeline;

    #[test]
    fn budgets_preserve_baseline_ordering() {
        let b7 = budget_for("codeLlama-7B-analog");
        let b13 = budget_for("codeLlama-13B-analog");
        let bds = budget_for("DeepSeek-Coder-7B-analog");
        assert!(b13.pairs > b7.pairs);
        assert!(bds.pairs > b13.pairs, "DeepSeek has the strongest Machine baseline");
    }

    #[test]
    fn pretraining_reduces_loss() {
        let pool = CorpusBuilder::new(30).scraped_files(80).llm_generation(false).build();
        let ds = Pipeline::new().run(pool.samples).dataset;
        let tk = build_tokenizer(ds.iter());
        let cfg = ModelConfig {
            name: "tiny".into(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_seq: 128,
            learning_rate: 3e-3,
            seed: 5,
        };
        let mut lm = TransformerLm::new(cfg, tk.vocab_size());
        let ex = to_examples(ds.iter(), &tk, 1.0);
        let before = lm.nll(&ex[0]).unwrap();
        let tcfg = TrainConfig { epochs: 1, ..TrainConfig::default() };
        pretrain(&mut lm, &tk, &ds, PretrainBudget { pairs: 16, epochs: 3 }, &tcfg);
        let after = lm.nll(&ex[0]).unwrap();
        assert!(after < before, "{before} -> {after}");
    }
}
