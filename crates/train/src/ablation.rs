//! Ablations separating PyraNet's two ingredients (§III-B combines them;
//! these trainers isolate each):
//!
//! * [`WeightingOnly`] — per-layer loss weights, but random sample order
//!   (no curriculum);
//! * [`CurriculumOnly`] — the layer-then-tier curriculum order, but
//!   uniform weight 1.0 (no loss weighting).

use crate::data::ExampleCache;
use crate::report::TrainReport;
use crate::sft::run_phase_with_order;
use crate::TrainConfig;
use pyranet_model::transformer::TrainExample;
use pyranet_model::{Tokenizer, TransformerLm};
use pyranet_pipeline::PyraNetDataset;

/// Loss weighting without curriculum: one shuffled phase where each example
/// carries its layer's weight.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightingOnly;

impl WeightingOnly {
    /// Runs the recipe.
    pub fn run(
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
    ) -> TrainReport {
        Self::run_cached(lm, tk, dataset, cfg, &ExampleCache::new())
    }

    /// [`WeightingOnly::run`] reusing a shared tokenized-example cache.
    pub fn run_cached(
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
        cache: &ExampleCache,
    ) -> TrainReport {
        let mut examples: Vec<TrainExample> =
            dataset.iter().map(|s| cache.example(s, tk, s.layer.loss_weight() as f32)).collect();
        let mut report = TrainReport::new("ablation: loss weighting only");
        run_phase_with_order(lm, &mut examples, cfg, "weighting-only", 1.0, &mut report, true);
        report
    }
}

/// Curriculum without loss weighting: examples visited in layer-then-tier
/// order, all at weight 1.0.
#[derive(Debug, Clone, Copy, Default)]
pub struct CurriculumOnly;

impl CurriculumOnly {
    /// Runs the recipe.
    pub fn run(
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
    ) -> TrainReport {
        Self::run_cached(lm, tk, dataset, cfg, &ExampleCache::new())
    }

    /// [`CurriculumOnly::run`] reusing a shared tokenized-example cache.
    pub fn run_cached(
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
        cache: &ExampleCache,
    ) -> TrainReport {
        let mut examples: Vec<TrainExample> =
            dataset.curriculum().iter().map(|s| cache.example(s, tk, 1.0)).collect();
        let mut report = TrainReport::new("ablation: curriculum only");
        run_phase_with_order(lm, &mut examples, cfg, "curriculum-only", 1.0, &mut report, false);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{build_tokenizer, prompt_text};
    use pyranet_corpus::CorpusBuilder;
    use pyranet_model::ModelConfig;
    use pyranet_pipeline::Pipeline;

    fn example_for(
        s: &pyranet_pipeline::CuratedSample,
        tk: &Tokenizer,
        weight: f32,
    ) -> TrainExample {
        let prompt = prompt_text(&s.description, &s.source);
        let (ids, code_start) = tk.encode_pair(&prompt, &s.source);
        TrainExample { ids, code_start, weight }
    }

    fn setup() -> (PyraNetDataset, Tokenizer, TransformerLm) {
        let pool = CorpusBuilder::new(25).scraped_files(150).build();
        let ds = Pipeline::new().run(pool.samples).dataset;
        let tk = build_tokenizer(ds.iter());
        let cfg = ModelConfig {
            name: "tiny".into(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_seq: 128,
            learning_rate: 3e-3,
            seed: 5,
        };
        let lm = TransformerLm::new(cfg, tk.vocab_size());
        (ds, tk, lm)
    }

    #[test]
    fn weighting_only_carries_layer_weights() {
        let (ds, tk, _) = setup();
        let examples: Vec<TrainExample> =
            ds.iter().map(|s| example_for(s, &tk, s.layer.loss_weight() as f32)).collect();
        let weights: std::collections::HashSet<u32> =
            examples.iter().map(|e| (e.weight * 10.0) as u32).collect();
        assert!(weights.len() >= 2, "multiple distinct weights expected: {weights:?}");
    }

    #[test]
    fn both_ablations_train() {
        let (ds, tk, mut lm) = setup();
        let cfg =
            TrainConfig { epochs: 1, max_examples_per_phase: Some(12), ..TrainConfig::default() };
        let r1 = WeightingOnly::run(&mut lm, &tk, &ds, &cfg);
        let r2 = CurriculumOnly::run(&mut lm, &tk, &ds, &cfg);
        assert_eq!(r1.phases.len(), 1);
        assert_eq!(r2.phases.len(), 1);
    }

    #[test]
    fn curriculum_only_preserves_order() {
        let (ds, tk, _) = setup();
        // example weights are all 1.0 and order follows the curriculum
        let examples: Vec<TrainExample> =
            ds.curriculum().iter().map(|s| example_for(s, &tk, 1.0)).collect();
        assert!(examples.iter().all(|e| (e.weight - 1.0).abs() < 1e-6));
        assert_eq!(examples.len(), ds.len());
    }
}
