//! Plain supervised fine-tuning — the **PyraNet-Dataset** experiment.
//!
//! Paper §IV-C, first experiment: "we fine-tuned the … models using each
//! available (data, description) pair from the dataset … the loss weights
//! were set to 1.0" with random sampling (no curriculum).

use crate::data::{shuffle_examples, to_examples_cached, ExampleCache};
use crate::report::{PhaseReport, TrainReport};
use crate::TrainConfig;
use pyranet_exec::ExecConfig;
use pyranet_model::transformer::TrainExample;
use pyranet_model::{Adam, Tokenizer, TransformerLm};
use pyranet_pipeline::PyraNetDataset;

/// Plain SFT over every dataset entry with uniform weight 1.0.
#[derive(Debug, Clone, Copy, Default)]
pub struct SftTrainer;

impl SftTrainer {
    /// Runs the recipe, mutating `lm` in place. LoRA adapters are attached
    /// per the config and merged back afterwards, so the returned model is
    /// self-contained.
    pub fn run(
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
    ) -> TrainReport {
        Self::run_cached(lm, tk, dataset, cfg, &ExampleCache::new())
    }

    /// [`SftTrainer::run`] reusing a shared tokenized-example cache.
    pub fn run_cached(
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
        cache: &ExampleCache,
    ) -> TrainReport {
        let mut examples = to_examples_cached(dataset.iter(), tk, 1.0, cache);
        let mut report = TrainReport::new("PyraNet-Dataset (plain SFT)");
        run_phase(lm, &mut examples, cfg, "sft", 1.0, &mut report);
        report
    }
}

/// Shared phase runner: shuffles, truncates, batches, trains `cfg.epochs`
/// passes, records a [`PhaseReport`]. Used by all recipes.
pub(crate) fn run_phase(
    lm: &mut TransformerLm,
    examples: &mut Vec<TrainExample>,
    cfg: &TrainConfig,
    name: &str,
    loss_weight: f64,
    report: &mut TrainReport,
) {
    run_phase_with_order(lm, examples, cfg, name, loss_weight, report, true);
}

/// [`run_phase`] with explicit control over shuffling — the curriculum
/// ablation trains in the given order.
pub(crate) fn run_phase_with_order(
    lm: &mut TransformerLm,
    examples: &mut Vec<TrainExample>,
    cfg: &TrainConfig,
    name: &str,
    loss_weight: f64,
    report: &mut TrainReport,
    shuffle: bool,
) {
    if examples.is_empty() {
        // Record an explicit zero-step phase so curriculum reports always
        // carry one entry per scheduled layer/tier.
        report.phases.push(PhaseReport {
            name: name.to_owned(),
            loss_weight,
            examples: 0,
            first_loss: 0.0,
            last_loss: 0.0,
        });
        return;
    }
    if shuffle {
        shuffle_examples(examples, cfg.seed ^ name.len() as u64);
    }
    if let Some(cap) = cfg.max_examples_per_phase {
        examples.truncate(cap);
    }
    if let Some(lora) = cfg.lora {
        if !lm.has_lora() {
            lm.enable_lora(lora);
        }
    }
    let exec = ExecConfig::new().threads(cfg.threads);
    let mut opt = Adam::new(lm.trainable_count(), cfg.learning_rate);
    let mut first = None;
    let mut last = 0.0f32;
    for _epoch in 0..cfg.epochs {
        for batch in examples.chunks(cfg.batch_size) {
            if let Some(loss) = lm.train_step_with(batch, &mut opt, &exec) {
                if first.is_none() {
                    first = Some(loss);
                }
                last = loss;
            }
        }
    }
    // Fold adapters so later phases/evaluation see one coherent model.
    lm.merge_lora();
    report.phases.push(PhaseReport {
        name: name.to_owned(),
        loss_weight,
        examples: examples.len(),
        first_loss: first.unwrap_or(0.0),
        last_loss: last,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::build_tokenizer;
    use pyranet_corpus::CorpusBuilder;
    use pyranet_model::ModelConfig;
    use pyranet_pipeline::Pipeline;

    fn small_dataset() -> PyraNetDataset {
        let pool = CorpusBuilder::new(21).scraped_files(120).llm_generation(false).build();
        Pipeline::new().run(pool.samples).dataset
    }

    fn tiny_model(vocab: usize) -> TransformerLm {
        let cfg = ModelConfig {
            name: "tiny".into(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_seq: 160,
            learning_rate: 3e-3,
            seed: 5,
        };
        TransformerLm::new(cfg, vocab)
    }

    #[test]
    fn sft_improves_loss() {
        let ds = small_dataset();
        let tk = build_tokenizer(ds.iter());
        let mut lm = tiny_model(tk.vocab_size());
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            max_examples_per_phase: Some(24),
            ..TrainConfig::default()
        };
        let report = SftTrainer::run(&mut lm, &tk, &ds, &cfg);
        assert_eq!(report.phases.len(), 1);
        let p = &report.phases[0];
        assert!(p.last_loss < p.first_loss, "{} -> {}", p.first_loss, p.last_loss);
        assert!(!lm.has_lora(), "adapters merged after the run");
    }

    #[test]
    fn sft_respects_example_cap() {
        let ds = small_dataset();
        let tk = build_tokenizer(ds.iter());
        let mut lm = tiny_model(tk.vocab_size());
        let cfg =
            TrainConfig { epochs: 1, max_examples_per_phase: Some(5), ..TrainConfig::default() };
        let report = SftTrainer::run(&mut lm, &tk, &ds, &cfg);
        assert_eq!(report.phases[0].examples, 5);
    }

    #[test]
    fn full_finetune_mode_works_too() {
        let ds = small_dataset();
        let tk = build_tokenizer(ds.iter());
        let mut lm = tiny_model(tk.vocab_size());
        let cfg = TrainConfig {
            epochs: 1,
            lora: None,
            max_examples_per_phase: Some(8),
            ..TrainConfig::default()
        };
        let report = SftTrainer::run(&mut lm, &tk, &ds, &cfg);
        assert_eq!(report.total_examples(), 8);
    }
}
