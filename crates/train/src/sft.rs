//! Plain supervised fine-tuning — the **PyraNet-Dataset** experiment.
//!
//! Paper §IV-C, first experiment: "we fine-tuned the … models using each
//! available (data, description) pair from the dataset … the loss weights
//! were set to 1.0" with random sampling (no curriculum).

use crate::data::{shuffle_examples, to_examples_cached, ExampleCache};
use crate::report::{PhaseReport, TrainReport};
use crate::TrainConfig;
use pyranet_exec::ExecConfig;
use pyranet_model::transformer::TrainExample;
use pyranet_model::{Adam, Tokenizer, TransformerLm};
use pyranet_pipeline::PyraNetDataset;

/// Plain SFT over every dataset entry with uniform weight 1.0.
#[derive(Debug, Clone, Copy, Default)]
pub struct SftTrainer;

impl SftTrainer {
    /// Runs the recipe, mutating `lm` in place. LoRA adapters are attached
    /// per the config and merged back afterwards, so the returned model is
    /// self-contained.
    pub fn run(
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
    ) -> TrainReport {
        Self::run_cached(lm, tk, dataset, cfg, &ExampleCache::new())
    }

    /// [`SftTrainer::run`] reusing a shared tokenized-example cache.
    pub fn run_cached(
        lm: &mut TransformerLm,
        tk: &Tokenizer,
        dataset: &PyraNetDataset,
        cfg: &TrainConfig,
        cache: &ExampleCache,
    ) -> TrainReport {
        let mut examples = to_examples_cached(dataset.iter(), tk, 1.0, cache);
        let mut report = TrainReport::new("PyraNet-Dataset (plain SFT)");
        run_phase(lm, &mut examples, cfg, "sft", 1.0, &mut report);
        report
    }
}

/// Shared phase runner: shuffles, truncates, batches, trains `cfg.epochs`
/// passes, records a [`PhaseReport`]. Used by all recipes.
pub(crate) fn run_phase(
    lm: &mut TransformerLm,
    examples: &mut Vec<TrainExample>,
    cfg: &TrainConfig,
    name: &str,
    loss_weight: f64,
    report: &mut TrainReport,
) {
    run_phase_with_order(lm, examples, cfg, name, loss_weight, report, true);
}

/// Shuffle seed for one named phase: the full phase name is folded in via
/// FNV-1a ([`pyranet_exec::stream_seed_str`]), so every phase of the
/// 24-phase curriculum draws a distinct permutation. The previous
/// `cfg.seed ^ name.len()` collided for all same-length names —
/// "L1/Basic" through "L6/Basic" (and every other tier column) reused one
/// identical permutation.
pub(crate) fn phase_shuffle_seed(seed: u64, name: &str) -> u64 {
    pyranet_exec::stream_seed_str(seed, name)
}

/// [`run_phase`] with explicit control over shuffling — the curriculum
/// ablation trains in the given order.
///
/// Instrumented with `pyranet_obs`: a `train.phase` span, example/step/
/// token counters, and loss-curve + throughput gauges. Recording only —
/// the trained weights are byte-identical with or without a snapshot
/// consumer.
pub(crate) fn run_phase_with_order(
    lm: &mut TransformerLm,
    examples: &mut Vec<TrainExample>,
    cfg: &TrainConfig,
    name: &str,
    loss_weight: f64,
    report: &mut TrainReport,
    shuffle: bool,
) {
    let obs = pyranet_obs::global();
    obs.counter("train.phases").inc();
    if examples.is_empty() {
        // Record an explicit zero-step phase so curriculum reports always
        // carry one entry per scheduled layer/tier.
        obs.counter("train.zero_example_phases").inc();
        report.phases.push(PhaseReport {
            name: name.to_owned(),
            loss_weight,
            examples: 0,
            steps: 0,
            first_loss: 0.0,
            last_loss: 0.0,
        });
        return;
    }
    let span = obs.span("train.phase");
    lm.set_kernels(cfg.kernel);
    obs.counter(&format!("train.kernel.{}", cfg.kernel)).inc();
    if shuffle {
        shuffle_examples(examples, phase_shuffle_seed(cfg.seed, name));
    }
    if let Some(cap) = cfg.max_examples_per_phase {
        examples.truncate(cap);
    }
    if let Some(lora) = cfg.lora {
        if !lm.has_lora() {
            lm.enable_lora(lora);
        }
    }
    let exec = ExecConfig::new().threads(cfg.threads);
    let mut opt = Adam::new(lm.trainable_count(), cfg.learning_rate);
    let mut first = None;
    let mut last = 0.0f32;
    let mut steps = 0usize;
    let mut tokens = 0u64;
    for _epoch in 0..cfg.epochs {
        for batch in examples.chunks(cfg.batch_size) {
            if let Some(loss) = lm.train_step_with(batch, &mut opt, &exec) {
                if first.is_none() {
                    first = Some(loss);
                }
                last = loss;
                steps += 1;
                tokens += batch.iter().map(|ex| ex.ids.len() as u64).sum::<u64>();
            }
        }
    }
    // Fold adapters so later phases/evaluation see one coherent model.
    lm.merge_lora();
    let secs = span.stop().as_secs_f64();
    obs.counter("train.steps").add(steps as u64);
    obs.counter("train.tokens").add(tokens);
    obs.counter("train.examples").add(examples.len() as u64 * cfg.epochs as u64);
    if steps == 0 {
        obs.counter("train.zero_step_phases").inc();
    } else {
        obs.gauge("train.phase.first_loss").set(f64::from(first.unwrap_or(0.0)));
        obs.gauge("train.phase.last_loss").set(f64::from(last));
        if secs > 0.0 {
            obs.gauge("train.phase.tokens_per_sec").set(tokens as f64 / secs);
        }
    }
    report.phases.push(PhaseReport {
        name: name.to_owned(),
        loss_weight,
        examples: examples.len(),
        steps,
        first_loss: first.unwrap_or(0.0),
        last_loss: last,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::build_tokenizer;
    use pyranet_corpus::CorpusBuilder;
    use pyranet_model::ModelConfig;
    use pyranet_pipeline::Pipeline;

    fn small_dataset() -> PyraNetDataset {
        let pool = CorpusBuilder::new(21).scraped_files(120).llm_generation(false).build();
        Pipeline::new().run(pool.samples).dataset
    }

    fn tiny_model(vocab: usize) -> TransformerLm {
        let cfg = ModelConfig {
            name: "tiny".into(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_seq: 160,
            learning_rate: 3e-3,
            seed: 5,
        };
        TransformerLm::new(cfg, vocab)
    }

    #[test]
    fn sft_improves_loss() {
        let ds = small_dataset();
        let tk = build_tokenizer(ds.iter());
        let mut lm = tiny_model(tk.vocab_size());
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            max_examples_per_phase: Some(24),
            ..TrainConfig::default()
        };
        let report = SftTrainer::run(&mut lm, &tk, &ds, &cfg);
        assert_eq!(report.phases.len(), 1);
        let p = &report.phases[0];
        assert!(p.last_loss < p.first_loss, "{} -> {}", p.first_loss, p.last_loss);
        assert!(!lm.has_lora(), "adapters merged after the run");
    }

    #[test]
    fn sft_respects_example_cap() {
        let ds = small_dataset();
        let tk = build_tokenizer(ds.iter());
        let mut lm = tiny_model(tk.vocab_size());
        let cfg =
            TrainConfig { epochs: 1, max_examples_per_phase: Some(5), ..TrainConfig::default() };
        let report = SftTrainer::run(&mut lm, &tk, &ds, &cfg);
        assert_eq!(report.phases[0].examples, 5);
    }

    #[test]
    fn same_length_phase_names_get_distinct_permutations() {
        // Regression: the shuffle seed used to be `cfg.seed ^ name.len()`,
        // so "L1/Basic" and "L2/Basic" (same length) reused one identical
        // permutation — adjacent curriculum phases saw examples in the
        // same order every run.
        let seed = TrainConfig::default().seed;
        assert_ne!(phase_shuffle_seed(seed, "L1/Basic"), phase_shuffle_seed(seed, "L2/Basic"));

        let base: Vec<TrainExample> =
            (0..64).map(|i| TrainExample { ids: vec![i], code_start: 0, weight: 1.0 }).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        shuffle_examples(&mut a, phase_shuffle_seed(seed, "L1/Basic"));
        shuffle_examples(&mut b, phase_shuffle_seed(seed, "L2/Basic"));
        let order = |v: &[TrainExample]| v.iter().map(|e| e.ids[0]).collect::<Vec<_>>();
        assert_ne!(order(&a), order(&b), "same-length phase names must not share an order");

        // Same name + same master seed still replays the same permutation.
        let mut a2 = base.clone();
        shuffle_examples(&mut a2, phase_shuffle_seed(seed, "L1/Basic"));
        assert_eq!(order(&a), order(&a2));
    }

    #[test]
    fn full_finetune_mode_works_too() {
        let ds = small_dataset();
        let tk = build_tokenizer(ds.iter());
        let mut lm = tiny_model(tk.vocab_size());
        let cfg = TrainConfig {
            epochs: 1,
            lora: None,
            max_examples_per_phase: Some(8),
            ..TrainConfig::default()
        };
        let report = SftTrainer::run(&mut lm, &tk, &ds, &cfg);
        assert_eq!(report.total_examples(), 8);
    }
}
