//! Training telemetry.

use serde::{Deserialize, Serialize};

/// Loss trajectory for one training phase (one layer×tier group for
/// PyraNet, one epoch set for plain SFT).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase label, e.g. `"L1/Basic"` or `"sft"`.
    pub name: String,
    /// Loss weight in effect.
    pub loss_weight: f64,
    /// Number of examples in the phase.
    pub examples: usize,
    /// Optimizer steps actually taken. `0` with `examples > 0` means every
    /// batch lacked a supervisable code region — previously invisible,
    /// because `first_loss`/`last_loss` default to `0.0` either way.
    pub steps: usize,
    /// Mean loss of the first optimizer step.
    pub first_loss: f32,
    /// Mean loss of the last optimizer step.
    pub last_loss: f32,
}

/// A full fine-tuning run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Recipe name.
    pub recipe: String,
    /// Phases in execution order.
    pub phases: Vec<PhaseReport>,
}

impl TrainReport {
    /// Creates an empty report for a recipe.
    pub fn new(recipe: impl Into<String>) -> TrainReport {
        TrainReport { recipe: recipe.into(), phases: Vec::new() }
    }

    /// Total examples across phases.
    pub fn total_examples(&self) -> usize {
        self.phases.iter().map(|p| p.examples).sum()
    }

    /// Renders the Fig. 1-b style schedule: phase order with loss weights.
    pub fn render_schedule(&self) -> String {
        let mut out = format!("fine-tuning schedule: {}\n", self.recipe);
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "  step {:>2}: {:<16} weight {:.1}  ({} examples, loss {:.3} -> {:.3})\n",
                i + 1,
                p.name,
                p.loss_weight,
                p.examples,
                p.first_loss,
                p.last_loss
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_renders_phases_in_order() {
        let mut r = TrainReport::new("pyranet");
        r.phases.push(PhaseReport {
            name: "L1/Basic".into(),
            loss_weight: 1.0,
            examples: 10,
            steps: 2,
            first_loss: 3.0,
            last_loss: 1.0,
        });
        r.phases.push(PhaseReport {
            name: "L2/Basic".into(),
            loss_weight: 0.8,
            examples: 20,
            steps: 3,
            first_loss: 2.0,
            last_loss: 0.9,
        });
        let s = r.render_schedule();
        let p1 = s.find("L1/Basic").unwrap();
        let p2 = s.find("L2/Basic").unwrap();
        assert!(p1 < p2);
        assert!(s.contains("weight 1.0"));
        assert!(s.contains("weight 0.8"));
        assert_eq!(r.total_examples(), 30);
    }
}
