//! # pyranet-train
//!
//! Fine-tuning recipes over the PyraNet dataset (paper §III-B and §IV):
//!
//! * [`data`] — tokenizer construction and (description, code) →
//!   [`pyranet_model::transformer::TrainExample`] conversion;
//! * [`pretrain`] — base-model pre-training, giving each Table II base a
//!   different amount of general Verilog competence (the reason
//!   CodeLlama-13B's baseline beats 7B's in Table I);
//! * [`sft`] — plain supervised fine-tuning on every pair with loss weight
//!   1.0 (the **PyraNet-Dataset** experiment);
//! * [`pyranet`] — the full **PyraNet-Architecture** fine-tuning: layers
//!   visited apex → base with the 1.0/0.8/0.6/0.4/0.2/0.1 loss weights,
//!   curriculum Basic → Intermediate → Advanced → Expert inside each layer;
//! * [`repair`] — defect-injected → clean repair SFT: every curated sample
//!   is re-broken with a checked `pyranet_corpus::defect` injector
//!   (guaranteed to actually mutate) and the model learns to restore the
//!   original;
//! * [`baselines`] — re-implementations of the comparator recipes:
//!   MG-Verilog (multi-grained descriptions), RTLCoder (quality-feedback
//!   filtering), OriGen (code-to-code augmentation, no self-reflection —
//!   the paper also omits it);
//! * [`report`] — per-phase training telemetry and the Fig. 1-b schedule
//!   dump.

pub mod ablation;
pub mod baselines;
pub mod data;
pub mod pretrain;
pub mod pyranet;
pub mod repair;
pub mod report;
pub mod sft;

pub use data::{build_tokenizer, to_examples, to_examples_cached, ExampleCache};
pub use pyranet::PyraNetTrainer;
pub use repair::{export_repair_jsonl, repair_pairs, RepairPair, RepairTrainer};
pub use report::{PhaseReport, TrainReport};
pub use sft::SftTrainer;

use pyranet_model::lora::LoraConfig;
use pyranet_model::KernelMode;

/// Shared fine-tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Passes over the data per phase (paper Table II: 1–3).
    pub epochs: usize,
    /// Examples per optimizer step.
    pub batch_size: usize,
    /// Learning rate (paper: 2e-4; scaled up for the tiny substitute by
    /// default because its loss landscape is far less curved).
    pub learning_rate: f32,
    /// Cap on examples drawn per phase (keeps bench runtimes bounded);
    /// `None` uses everything.
    pub max_examples_per_phase: Option<usize>,
    /// LoRA adapters (the paper fine-tunes with LoRA); `None` does full
    /// fine-tuning.
    pub lora: Option<LoraConfig>,
    /// Shuffling seed.
    pub seed: u64,
    /// Threads for batched gradient computation (`0` = auto, resolving
    /// from `PYRANET_THREADS` or the machine). Training outputs are
    /// byte-identical at any value — see `train_step_with`.
    pub threads: usize,
    /// Kernel family for every forward/backward pass of the run
    /// (`--kernel` on the CLI). `Blocked` and `Reference` train
    /// bit-identically; `Simd` is deterministic but trades bit-parity on
    /// the attention-backward dot products for vectorization;
    /// `QuantizedInt8` trains like `Simd` (weights are only quantized on
    /// the decode path, never during training).
    pub kernel: KernelMode,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 2,
            batch_size: 8,
            learning_rate: 6e-3,
            max_examples_per_phase: Some(240),
            lora: None,
            seed: 7,
            threads: 0,
            kernel: KernelMode::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_within_paper_ranges() {
        let c = TrainConfig::default();
        // The paper fine-tunes with LoRA; the substitute defaults to full
        // fine-tuning (see DESIGN.md) but adapters stay available.
        assert!(c.epochs >= 1 && c.epochs <= 3, "Table II epoch range");
        assert!(c.learning_rate > 0.0);
    }
}
