//! # pyranet-corpus
//!
//! Synthetic Verilog corpus generation — the PyraNet reproduction's
//! substitute for the paper's two data sources:
//!
//! 1. **"GitHub scrape"** — [`builder::CorpusBuilder`] produces a large,
//!    noisy pool of Verilog files with a controlled quality mix: clean
//!    designs across fifteen circuit families, style-degraded variants,
//!    files with syntax errors, files with dependency issues, duplicates,
//!    and empty/broken files. The mix mirrors the funnel of §III-A.5
//!    (≈2.4 M collected → 692 k curated at paper scale).
//! 2. **"GPT-4o-mini generation"** — [`llmgen`] reproduces Fig. 2: a
//!    keyword database ([`keywords`]) is expanded into specific variants,
//!    each variant becomes a detailed prompt, and a seeded pseudo-LLM
//!    samples each prompt 10× at different temperatures (higher temperature
//!    ⇒ more stylistic drift and occasional defects).
//!
//! Every clean design carries a structured [`families::DesignFamily`] spec,
//! so the evaluation crate can synthesise golden testbenches for the same
//! circuits, and [`describe`] renders natural-language descriptions at
//! several granularities (the (description, code) fine-tuning pairs).
//!
//! # Example
//!
//! ```
//! use pyranet_corpus::{families::DesignFamily, gen::generate, style::StyleOptions};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let d = generate(&DesignFamily::HalfAdder, &StyleOptions::clean(), &mut rng);
//! assert!(d.source.contains("module"));
//! assert!(pyranet_verilog::check_source(&d.source).is_clean());
//! ```

pub mod builder;
pub mod defect;
pub mod describe;
pub mod families;
pub mod gen;
pub mod keywords;
pub mod llmgen;
pub mod sample;
pub mod spec;
pub mod style;

pub use builder::{CorpusBuilder, CorpusPool};
pub use families::DesignFamily;
pub use gen::{generate, Design};
pub use sample::{Origin, RawSample, TruthLabel};
