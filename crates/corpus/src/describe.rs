//! Natural-language description synthesis for (description, code) pairs.
//!
//! The paper attaches a design description to every sample (generated with
//! GPT-4o-mini); fine-tuning uses descriptions as inputs and code as
//! outputs. This module renders deterministic but phrasally-varied
//! descriptions from the structured family spec — the properties that
//! matter downstream are (a) the description identifies the circuit
//! unambiguously and (b) the phrasing has enough variety that the model
//! cannot key on one fixed string.

use crate::families::DesignFamily;
use rand::Rng;

/// Renders a description for a family instance.
///
/// The `ports` role map lets descriptions mention concrete port names, the
/// way a human-written spec would.
pub fn describe<R: Rng>(family: &DesignFamily, ports: &[(String, String)], rng: &mut R) -> String {
    let opening = match rng.random_range(0..4) {
        0 => "Write a Verilog module that implements",
        1 => "Implement",
        2 => "Design a Verilog module for",
        _ => "Create",
    };
    let body = body_text(family, ports);
    let port_note = port_sentence(ports, rng);
    format!("{opening} {body}.{port_note}")
}

fn port_name<'p>(ports: &'p [(String, String)], role: &'p str) -> &'p str {
    ports.iter().find(|(r, _)| r == role).map(|(_, n)| n.as_str()).unwrap_or(role)
}

fn body_text(family: &DesignFamily, ports: &[(String, String)]) -> String {
    use DesignFamily::*;
    match family {
        HalfAdder => format!(
            "a half adder with inputs {} and {}, sum output {} and carry output {}",
            port_name(ports, "operand_a"),
            port_name(ports, "operand_b"),
            port_name(ports, "sum"),
            port_name(ports, "carry_out")
        ),
        FullAdder => format!(
            "a full adder adding {}, {} and carry-in {}",
            port_name(ports, "operand_a"),
            port_name(ports, "operand_b"),
            port_name(ports, "carry_in")
        ),
        RippleCarryAdder { width } => format!(
            "a {width}-bit ripple carry adder built from full adder cells, with carry in and carry out"
        ),
        BehavioralAdder { width } => {
            format!("a {width}-bit adder with carry in and carry out, written behaviourally")
        }
        AddSub { width } => format!(
            "a {width}-bit adder subtractor where mode 0 adds and mode 1 subtracts"
        ),
        Multiplier { width } => {
            format!("a {width} by {width} unsigned combinational multiplier")
        }
        Comparator { width } => format!(
            "a {width}-bit unsigned comparator with less-than, equal and greater-than outputs"
        ),
        Mux { sel_width, width } => format!(
            "a {}-to-1 multiplexer with {width}-bit data inputs selected by {}",
            1u32 << sel_width,
            port_name(ports, "select")
        ),
        Decoder { width } => format!(
            "a {width}-to-{} binary decoder with an enable input",
            1u32 << width
        ),
        PriorityEncoder { width } => format!(
            "a {}-line priority encoder where the highest set request wins, with a valid output",
            1u32 << width
        ),
        Parity { width, even } => format!(
            "an {} parity generator over a {width}-bit data word",
            if *even { "even" } else { "odd" }
        ),
        Alu { width } => format!(
            "a {width}-bit ALU supporting add, subtract, and, or, xor, set-less-than and shifts, selected by a 3-bit opcode, with a zero flag"
        ),
        Counter { width } => format!(
            "a {width}-bit synchronous up counter with reset and enable"
        ),
        UpDownCounter { width } => format!(
            "a {width}-bit up down counter that counts up when up is high and down otherwise"
        ),
        ModCounter { modulus } => format!(
            "a modulo {modulus} counter that wraps to zero and asserts a terminal count output"
        ),
        Dff => "a D flip flop with asynchronous reset and clock enable".to_owned(),
        ShiftRegister { width } => format!(
            "a {width}-bit serial-in parallel-out shift register shifting toward the MSB"
        ),
        Lfsr { width } => format!(
            "a {width}-bit linear feedback shift register with xnor feedback"
        ),
        EdgeDetector => {
            "a rising edge detector that pulses for one cycle after a 0 to 1 transition".to_owned()
        }
        GrayCounter { width } => {
            format!("a {width}-bit gray code counter whose output changes one bit per cycle")
        }
        BinToGray { width } => {
            format!("a {width}-bit binary to gray code converter")
        }
        SequenceDetector { pattern } => {
            let bits: String = pattern.iter().map(|b| if *b { '1' } else { '0' }).collect();
            format!(
                "a sequence detector that asserts hit when the serial input has produced the bits {bits}, allowing overlap"
            )
        }
        Ram { addr_width, data_width } => format!(
            "a single port synchronous RAM with {} words of {data_width} bits and registered read",
            1u32 << addr_width
        ),
        RegFile { addr_width, data_width } => format!(
            "a register file with {} entries of {data_width} bits, a synchronous write port, an asynchronous read port, and register zero hardwired to zero",
            1u32 << addr_width
        ),
        BarrelShifter { width } => {
            format!("a {width}-bit barrel shifter that rotates its input left by a variable amount")
        }
        JohnsonCounter { width } => format!(
            "a {width}-bit johnson counter, the twisted ring counter with a 2 times {width} state cycle"
        ),
        RingCounter { width } => {
            format!("a {width}-bit one hot ring counter that rotates a single set bit")
        }
        BcdCounter => {
            "a two digit BCD counter counting 00 to 99 with a carry output at 99".to_owned()
        }
        SevenSeg => "a BCD to seven segment display decoder with active high segments".to_owned(),
        Fifo { addr_width, data_width } => format!(
            "a synchronous FIFO with {} entries of {data_width} bits, push and pop controls, and full and empty flags",
            1u32 << addr_width
        ),
        SaturatingCounter { width } => format!(
            "a {width}-bit saturating counter that counts up or down and clamps at its limits"
        ),
        Majority => "a three input majority voter".to_owned(),
        // Spec-pair families never reach this renderer — `generate`
        // dispatches them to `crate::spec`, which derives the description
        // from the simulated design. The arms exist for exhaustiveness and
        // for anyone describing the family out of band.
        TruthTable { base } => {
            format!("{}, specified by its complete truth table", body_text(base, ports))
        }
        FsmTable { pattern } => {
            let bits: String = pattern.iter().map(|b| if *b { '1' } else { '0' }).collect();
            format!(
                "a sequence detector for the bits {bits}, specified by its transition table"
            )
        }
    }
}

fn port_sentence<R: Rng>(ports: &[(String, String)], rng: &mut R) -> String {
    if ports.len() < 2 || rng.random_range(0..3) == 0 {
        return String::new();
    }
    let names: Vec<&str> = ports.iter().map(|(_, n)| n.as_str()).collect();
    format!(" The ports are {}.", names.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn every_family_gets_a_description() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for f in DesignFamily::catalog() {
            let d = describe(&f, &[], &mut rng);
            assert!(d.len() > 20, "{f:?}: {d}");
            assert!(d.ends_with('.') || d.contains('.'));
        }
    }

    #[test]
    fn descriptions_vary_in_phrasing() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let set: std::collections::HashSet<String> =
            (0..20).map(|_| describe(&DesignFamily::HalfAdder, &[], &mut rng)).collect();
        assert!(set.len() >= 2, "phrasing should vary, got {set:?}");
    }

    #[test]
    fn description_mentions_parameters() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let d = describe(&DesignFamily::Counter { width: 12 }, &[], &mut rng);
        assert!(d.contains("12-bit"), "{d}");
        let d = describe(&DesignFamily::ModCounter { modulus: 60 }, &[], &mut rng);
        assert!(d.contains("60"), "{d}");
    }

    #[test]
    fn description_mentions_port_names() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ports = vec![
            ("operand_a".to_owned(), "in_a".to_owned()),
            ("operand_b".to_owned(), "in_b".to_owned()),
            ("sum".to_owned(), "sum_out".to_owned()),
            ("carry_out".to_owned(), "carry_out".to_owned()),
        ];
        let d = describe(&DesignFamily::HalfAdder, &ports, &mut rng);
        assert!(d.contains("in_a"), "{d}");
    }
}
