//! Fig. 2 reproduction: Verilog generation "using commercial LLMs".
//!
//! The paper queries GPT-4o-mini 10 times per crafted prompt with different
//! temperature values. Our pseudo-LLM is the catalog generator behind a
//! temperature knob: low temperatures render the textbook-clean style,
//! higher temperatures progressively sample sloppier styles and
//! occasionally emit files with dependency issues or outright syntax
//! errors — matching the behaviour the paper's pipeline has to clean up.

use crate::defect;
use crate::gen::{generate, Design};
use crate::keywords::{craft_prompt, expanded_keywords, ExpandedKeyword};
use crate::sample::{Origin, RawSample, TruthLabel};
use crate::style::StyleOptions;
use rand::Rng;

/// Temperatures used for the 10 queries per prompt.
pub const TEMPERATURES: [f64; 10] = [0.0, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// One pseudo-LLM response.
#[derive(Debug, Clone)]
pub struct LlmResponse {
    /// The prompt text that was "sent".
    pub prompt: String,
    /// Sampling temperature.
    pub temperature: f64,
    /// The produced sample.
    pub sample: RawSample,
    /// The clean design backing the sample (before any defects), kept so
    /// tests can compare.
    pub design: Design,
}

/// Per-stage counts of the Fig. 2 funnel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenFunnel {
    /// Base keywords.
    pub keywords: usize,
    /// Expanded keywords.
    pub expanded: usize,
    /// Crafted prompts (= expanded keywords).
    pub prompts: usize,
    /// Total responses (prompts × 10).
    pub responses: usize,
}

/// Runs the full Fig. 2 pipeline: keywords → expanded keywords → prompts →
/// 10 temperature-varied queries each.
pub fn run_generation<R: Rng>(rng: &mut R, start_id: u64) -> (Vec<LlmResponse>, GenFunnel) {
    let expanded = expanded_keywords();
    let mut out = Vec::with_capacity(expanded.len() * TEMPERATURES.len());
    let mut id = start_id;
    for kw in &expanded {
        for &t in &TEMPERATURES {
            out.push(query(kw, t, id, rng));
            id += 1;
        }
    }
    let funnel = GenFunnel {
        keywords: crate::keywords::keyword_database().len(),
        expanded: expanded.len(),
        prompts: expanded.len(),
        responses: out.len(),
    };
    (out, funnel)
}

/// One pseudo-LLM query at a given temperature.
pub fn query<R: Rng>(kw: &ExpandedKeyword, temperature: f64, id: u64, rng: &mut R) -> LlmResponse {
    let prompt = craft_prompt(kw);
    // Temperature drives style sloppiness sub-linearly (even a hot model
    // mostly emits working code); the 0.2 floor models the residual drift a
    // sampled LLM always has — textbook-perfect output is rare even at
    // temperature 0, which keeps the paper's Layer 1 tiny relative to L2/L3.
    let sloppiness = 0.2 + temperature * 0.65;
    let style = StyleOptions::sampled(sloppiness, rng);
    let design = generate(&kw.family, &style, rng);
    // … and occasionally trips into broken outputs at the high end.
    let roll: f64 = rng.random();
    let (source, truth) = if roll < 0.06 * temperature {
        (defect::inject_syntax_error(&design.source, rng), TruthLabel::SyntaxBroken)
    } else if roll < 0.14 * temperature {
        (defect::inject_dependency_issue(&design.source, rng), TruthLabel::DependencyBroken)
    } else if style.corners_cut() >= 2 {
        (design.source.clone(), TruthLabel::Sloppy)
    } else {
        (design.source.clone(), TruthLabel::Clean)
    };
    let sample =
        RawSample::new(id, source, design.description.clone(), Origin::LlmGenerated, truth);
    LlmResponse { prompt, temperature, sample, design }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_verilog::check_source;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn funnel_shape_matches_fig2() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let (responses, funnel) = run_generation(&mut rng, 0);
        assert_eq!(funnel.responses, funnel.prompts * TEMPERATURES.len());
        assert_eq!(funnel.prompts, funnel.expanded);
        assert!(funnel.expanded > funnel.keywords);
        assert_eq!(responses.len(), funnel.responses);
    }

    #[test]
    fn zero_temperature_never_breaks() {
        // At temperature 0 no syntax/dependency defects are injected; style
        // may still drift (the 0.2 sloppiness floor).
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let kws = expanded_keywords();
        for kw in kws.iter().take(20) {
            let r = query(kw, 0.0, 1, &mut rng);
            assert!(
                matches!(r.sample.truth, TruthLabel::Clean | TruthLabel::Sloppy),
                "{:?}: {:?}",
                kw.family,
                r.sample.truth
            );
            assert!(check_source(&r.sample.source).is_clean());
        }
    }

    #[test]
    fn high_temperature_produces_some_defects() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let kws = expanded_keywords();
        let mut broken = 0;
        let mut sloppy = 0;
        for kw in &kws {
            for _ in 0..4 {
                let r = query(kw, 1.0, 1, &mut rng);
                match r.sample.truth {
                    TruthLabel::SyntaxBroken | TruthLabel::DependencyBroken => broken += 1,
                    TruthLabel::Sloppy => sloppy += 1,
                    _ => {}
                }
            }
        }
        assert!(broken > 0, "hot sampling should break sometimes");
        assert!(sloppy > broken, "sloppy should dominate broken");
    }

    #[test]
    fn truth_labels_match_checker_verdicts() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let (responses, _) = run_generation(&mut rng, 0);
        for r in responses {
            let v = check_source(&r.sample.source);
            match r.sample.truth {
                TruthLabel::Clean | TruthLabel::Sloppy => {
                    assert!(v.is_clean(), "{:?} {:?}\n{}", r.sample.truth, v, r.sample.source)
                }
                TruthLabel::DependencyBroken => {
                    assert!(
                        matches!(v, pyranet_verilog::SyntaxVerdict::DependencyIssue { .. }),
                        "{v:?}"
                    )
                }
                TruthLabel::SyntaxBroken => assert!(!v.is_compilable(), "{v:?}"),
                other => panic!("unexpected truth label {other:?}"),
            }
        }
    }

    #[test]
    fn ids_are_sequential_from_start() {
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let (responses, _) = run_generation(&mut rng, 1000);
        assert_eq!(responses[0].sample.id, 1000);
        assert_eq!(responses[1].sample.id, 1001);
    }
}
