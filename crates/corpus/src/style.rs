//! Style knobs for generated code.
//!
//! The same circuit can be rendered in many styles; quality tiering in the
//! pipeline is only meaningful if the corpus spans the style spectrum.

use rand::Rng;

/// Identifier naming scheme for generated ports/signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamingScheme {
    /// `a`, `b`, `cin`, `sum` — terse classic names.
    Terse,
    /// `in_a`, `in_b`, `carry_in`, `sum_out` — descriptive names.
    Descriptive,
    /// `i_a`, `i_b`, `o_sum` — prefix convention.
    Prefixed,
}

impl NamingScheme {
    /// Renders a logical port role into a concrete identifier.
    pub fn port(&self, role: &str) -> String {
        match self {
            NamingScheme::Terse => match role {
                "operand_a" => "a".into(),
                "operand_b" => "b".into(),
                "carry_in" => "cin".into(),
                "carry_out" => "cout".into(),
                "sum" => "sum".into(),
                "difference" => "diff".into(),
                "product" => "p".into(),
                "result" => "y".into(),
                "data_in" => "d".into(),
                "data_out" => "q".into(),
                "select" => "sel".into(),
                "enable" => "en".into(),
                "clock" => "clk".into(),
                "reset" => "rst".into(),
                "serial_in" => "sin".into(),
                "count" => "count".into(),
                other => other.into(),
            },
            NamingScheme::Descriptive => match role {
                "operand_a" => "in_a".into(),
                "operand_b" => "in_b".into(),
                "carry_in" => "carry_in".into(),
                "carry_out" => "carry_out".into(),
                "sum" => "sum_out".into(),
                "difference" => "diff_out".into(),
                "product" => "product".into(),
                "result" => "result".into(),
                "data_in" => "data_in".into(),
                "data_out" => "data_out".into(),
                "select" => "select".into(),
                "enable" => "enable".into(),
                "clock" => "clk".into(),
                "reset" => "rst".into(),
                "serial_in" => "serial_in".into(),
                "count" => "count_value".into(),
                other => other.into(),
            },
            NamingScheme::Prefixed => match role {
                "operand_a" => "i_a".into(),
                "operand_b" => "i_b".into(),
                "carry_in" => "i_cin".into(),
                "carry_out" => "o_cout".into(),
                "sum" => "o_sum".into(),
                "difference" => "o_diff".into(),
                "product" => "o_prod".into(),
                "result" => "o_y".into(),
                "data_in" => "i_d".into(),
                "data_out" => "o_q".into(),
                "select" => "i_sel".into(),
                "enable" => "i_en".into(),
                "clock" => "clk".into(),
                "reset" => "rst".into(),
                "serial_in" => "i_sin".into(),
                "count" => "o_count".into(),
                other => other.into(),
            },
        }
    }
}

/// Bundle of style options used while rendering a design.
#[derive(Debug, Clone, PartialEq)]
pub struct StyleOptions {
    /// Identifier naming.
    pub naming: NamingScheme,
    /// Emit a header comment describing the module.
    pub header_comment: bool,
    /// Emit inline comments on non-obvious lines.
    pub inline_comments: bool,
    /// Use sized literals everywhere (vs lazy unsized ones).
    pub sized_literals: bool,
    /// Include a `default` arm in case statements.
    pub case_default: bool,
    /// Use non-blocking assignments in sequential blocks (correct style).
    pub proper_nonblocking: bool,
}

impl StyleOptions {
    /// The textbook-clean style: everything right.
    pub fn clean() -> StyleOptions {
        StyleOptions {
            naming: NamingScheme::Terse,
            header_comment: true,
            inline_comments: true,
            sized_literals: true,
            case_default: true,
            proper_nonblocking: true,
        }
    }

    /// Samples a style whose sloppiness scales with `sloppiness` ∈ [0, 1]
    /// (0 = clean, 1 = every corner cut).
    pub fn sampled<R: Rng>(sloppiness: f64, rng: &mut R) -> StyleOptions {
        let s = sloppiness.clamp(0.0, 1.0);
        let cut = |rng: &mut R| rng.random::<f64>() < s;
        let naming = match rng.random_range(0..3) {
            0 => NamingScheme::Terse,
            1 => NamingScheme::Descriptive,
            _ => NamingScheme::Prefixed,
        };
        StyleOptions {
            naming,
            header_comment: !cut(rng),
            inline_comments: !cut(rng),
            sized_literals: !cut(rng),
            case_default: !cut(rng),
            proper_nonblocking: !cut(rng),
        }
    }

    /// Count of style corners cut (0–5), used by tests and the pseudo-LLM's
    /// temperature model.
    pub fn corners_cut(&self) -> u32 {
        u32::from(!self.header_comment)
            + u32::from(!self.inline_comments)
            + u32::from(!self.sized_literals)
            + u32::from(!self.case_default)
            + u32::from(!self.proper_nonblocking)
    }
}

impl Default for StyleOptions {
    fn default() -> Self {
        StyleOptions::clean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn clean_cuts_no_corners() {
        assert_eq!(StyleOptions::clean().corners_cut(), 0);
    }

    #[test]
    fn sloppiness_one_cuts_everything() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let s = StyleOptions::sampled(1.0, &mut rng);
        assert_eq!(s.corners_cut(), 5);
    }

    #[test]
    fn sloppiness_zero_cuts_nothing() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let s = StyleOptions::sampled(0.0, &mut rng);
        assert_eq!(s.corners_cut(), 0);
    }

    #[test]
    fn naming_schemes_differ() {
        assert_ne!(
            NamingScheme::Terse.port("operand_a"),
            NamingScheme::Descriptive.port("operand_a")
        );
        assert_eq!(NamingScheme::Prefixed.port("clock"), "clk");
    }

    #[test]
    fn sloppiness_scales_statistically() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let lo: u32 = (0..100).map(|_| StyleOptions::sampled(0.2, &mut rng).corners_cut()).sum();
        let hi: u32 = (0..100).map(|_| StyleOptions::sampled(0.8, &mut rng).corners_cut()).sum();
        assert!(hi > lo, "hi={hi} lo={lo}");
    }
}
