//! Parameterised Verilog generators for every [`DesignFamily`].
//!
//! Each generator renders source text under a [`StyleOptions`] bundle and
//! parses it back through `pyranet-verilog` — so by construction every
//! *clean* design in the corpus passes the same front end the curation
//! pipeline uses. Functional defects are never introduced here; quality
//! spread comes from style degradation (and, later, [`crate::defect`]
//! injection for the broken tiers).

use crate::describe;
use crate::families::DesignFamily;
use crate::style::StyleOptions;
use pyranet_verilog::ast::Module;
use pyranet_verilog::parse_module;
use rand::Rng;
use std::fmt::Write as _;

mod arith;
mod logic;
mod mem;
mod misc;
mod seq;

/// A generated design: structured spec + rendered artefacts.
#[derive(Debug, Clone)]
pub struct Design {
    /// The family instance this design implements.
    pub family: DesignFamily,
    /// Parsed module AST.
    pub module: Module,
    /// Rendered source.
    pub source: String,
    /// Natural-language description (the fine-tuning input).
    pub description: String,
    /// Role → concrete port name map (used by testbench synthesis).
    pub ports: Vec<(String, String)>,
}

impl Design {
    /// Name of the port playing `role`, if present.
    pub fn port(&self, role: &str) -> Option<&str> {
        self.ports.iter().find(|(r, _)| r == role).map(|(_, n)| n.as_str())
    }
}

/// Internal render result before parsing.
pub(crate) struct Rendered {
    pub source: String,
    pub ports: Vec<(String, String)>,
}

/// Generates a design for `family` in the given style.
///
/// # Panics
///
/// Panics if an internal template fails to parse — that is a bug in the
/// generator, not a data condition, and the test suite locks it down for
/// the whole catalog.
pub fn generate<R: Rng>(family: &DesignFamily, style: &StyleOptions, rng: &mut R) -> Design {
    use DesignFamily::*;
    // Spec-pair families render their description *from* the golden design
    // via the simulator (and re-verify it); they have their own path.
    match family {
        TruthTable { base } => return crate::spec::generate_truth_table(base, style, rng),
        FsmTable { pattern } => return crate::spec::generate_fsm_table(pattern, style, rng),
        _ => {}
    }
    let rendered = match family {
        HalfAdder => arith::half_adder(style),
        FullAdder => arith::full_adder(style),
        RippleCarryAdder { width } => arith::ripple_carry_adder(*width, style),
        BehavioralAdder { width } => arith::behavioral_adder(*width, style),
        AddSub { width } => arith::addsub(*width, style),
        Multiplier { width } => arith::multiplier(*width, style),
        Comparator { width } => arith::comparator(*width, style),
        Mux { sel_width, width } => logic::mux(*sel_width, *width, style),
        Decoder { width } => logic::decoder(*width, style),
        PriorityEncoder { width } => logic::priority_encoder(*width, style),
        Parity { width, even } => logic::parity(*width, *even, style),
        Alu { width } => logic::alu(*width, style),
        Counter { width } => seq::counter(*width, style),
        UpDownCounter { width } => seq::updown_counter(*width, style),
        ModCounter { modulus } => seq::mod_counter(*modulus, style),
        Dff => seq::dff(style),
        ShiftRegister { width } => seq::shift_register(*width, style),
        Lfsr { width } => seq::lfsr(*width, style),
        EdgeDetector => seq::edge_detector(style),
        GrayCounter { width } => seq::gray_counter(*width, style),
        BinToGray { width } => logic::bin_to_gray(*width, style),
        SequenceDetector { pattern } => seq::sequence_detector(pattern, style),
        Ram { addr_width, data_width } => mem::ram(*addr_width, *data_width, style),
        RegFile { addr_width, data_width } => mem::regfile(*addr_width, *data_width, style),
        BarrelShifter { width } => misc::barrel_shifter(*width, style),
        JohnsonCounter { width } => misc::johnson_counter(*width, style),
        RingCounter { width } => misc::ring_counter(*width, style),
        BcdCounter => misc::bcd_counter(style),
        SevenSeg => misc::seven_seg(style),
        Fifo { addr_width, data_width } => misc::fifo(*addr_width, *data_width, style),
        SaturatingCounter { width } => misc::saturating_counter(*width, style),
        Majority => misc::majority(style),
        TruthTable { .. } | FsmTable { .. } => unreachable!("handled above"),
    };
    let module = parse_module(&rendered.source).unwrap_or_else(|e| {
        panic!("generator for {family:?} produced unparseable code: {e}\n{}", rendered.source)
    });
    let description = describe::describe(family, &rendered.ports, rng);
    Design {
        family: family.clone(),
        module,
        source: rendered.source,
        description,
        ports: rendered.ports,
    }
}

// ---- shared helpers for the family submodules ----

/// Emits a module header comment when the style asks for one.
pub(crate) fn header(out: &mut String, style: &StyleOptions, text: &str) {
    if style.header_comment {
        let _ = writeln!(out, "// {text}");
    }
}

/// Emits an inline comment (with leading spaces) when enabled.
pub(crate) fn inline(style: &StyleOptions, text: &str) -> String {
    if style.inline_comments {
        format!(" // {text}")
    } else {
        String::new()
    }
}

/// Renders a literal: sized when the style asks, bare decimal otherwise.
pub(crate) fn lit(style: &StyleOptions, width: u32, value: u64) -> String {
    if style.sized_literals {
        format!("{width}'d{value}")
    } else {
        format!("{value}")
    }
}

/// Procedural assignment operator for sequential blocks under this style.
pub(crate) fn nb(style: &StyleOptions) -> &'static str {
    if style.proper_nonblocking {
        "<="
    } else {
        "="
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::style::NamingScheme;
    use pyranet_verilog::{check_source, SyntaxVerdict};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn whole_catalog_generates_clean_code() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for family in DesignFamily::catalog() {
            let d = generate(&family, &StyleOptions::clean(), &mut rng);
            let v = check_source(&d.source);
            assert_eq!(v, SyntaxVerdict::Clean, "{family:?}:\n{}", d.source);
            assert!(!d.description.is_empty());
            assert!(!d.ports.is_empty());
        }
    }

    #[test]
    fn whole_catalog_generates_under_all_naming_schemes() {
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        for scheme in [NamingScheme::Terse, NamingScheme::Descriptive, NamingScheme::Prefixed] {
            let style = StyleOptions { naming: scheme, ..StyleOptions::clean() };
            for family in DesignFamily::catalog() {
                let d = generate(&family, &style, &mut rng);
                assert!(
                    check_source(&d.source).is_clean(),
                    "{family:?} under {scheme:?}:\n{}",
                    d.source
                );
            }
        }
    }

    #[test]
    fn sloppy_style_still_parses() {
        let mut rng = ChaCha8Rng::seed_from_u64(44);
        for family in DesignFamily::catalog() {
            let style = StyleOptions::sampled(1.0, &mut rng);
            let d = generate(&family, &style, &mut rng);
            assert!(check_source(&d.source).is_compilable(), "{family:?}:\n{}", d.source);
        }
    }

    #[test]
    fn module_name_matches_family() {
        let mut rng = ChaCha8Rng::seed_from_u64(45);
        for family in DesignFamily::catalog() {
            let d = generate(&family, &StyleOptions::clean(), &mut rng);
            assert_eq!(d.module.name, family.module_name());
        }
    }

    #[test]
    fn port_roles_resolve() {
        let mut rng = ChaCha8Rng::seed_from_u64(46);
        let d = generate(&DesignFamily::HalfAdder, &StyleOptions::clean(), &mut rng);
        assert!(d.port("operand_a").is_some());
        assert!(d.port("nonexistent_role").is_none());
    }

    #[test]
    fn clean_style_has_low_lint_penalty() {
        let mut rng = ChaCha8Rng::seed_from_u64(47);
        for family in DesignFamily::catalog() {
            let d = generate(&family, &StyleOptions::clean(), &mut rng);
            let report = pyranet_verilog::lint::lint_module(&d.module, &d.source);
            assert!(
                report.penalty() <= 1.0,
                "{family:?} penalty {} findings {:?}\n{}",
                report.penalty(),
                report.findings,
                d.source
            );
        }
    }

    #[test]
    fn sloppy_style_lints_worse_on_average() {
        let mut rng = ChaCha8Rng::seed_from_u64(48);
        let mut clean_total = 0.0;
        let mut sloppy_total = 0.0;
        for family in DesignFamily::catalog() {
            let c = generate(&family, &StyleOptions::clean(), &mut rng);
            clean_total += pyranet_verilog::lint::lint_module(&c.module, &c.source).penalty();
            let style = StyleOptions::sampled(1.0, &mut rng);
            let s = generate(&family, &style, &mut rng);
            sloppy_total += pyranet_verilog::lint::lint_module(&s.module, &s.source).penalty();
        }
        assert!(sloppy_total > clean_total + 5.0, "sloppy={sloppy_total} clean={clean_total}");
    }
}
