//! Combinational logic generators: muxes, decoders, encoders, parity, ALU,
//! code converters.

use super::{header, inline, lit, Rendered};
use crate::style::StyleOptions;
use std::fmt::Write as _;

pub(crate) fn mux(sel_width: u32, width: u32, style: &StyleOptions) -> Rendered {
    let n = 1u32 << sel_width;
    let sel = style.naming.port("select");
    let y = style.naming.port("result");
    let hi = width - 1;
    let name = format!("mux{n}_{width}");
    let mut s = String::new();
    header(&mut s, style, &format!("{n}-to-1 multiplexer, {width}-bit data path."));
    let _ = write!(s, "module {name}(");
    for i in 0..n {
        let _ = write!(s, "input [{hi}:0] d{i}, ");
    }
    let selhi = sel_width - 1;
    if sel_width == 1 {
        let _ = writeln!(s, "input {sel}, output reg [{hi}:0] {y});");
    } else {
        let _ = writeln!(s, "input [{selhi}:0] {sel}, output reg [{hi}:0] {y});");
    }
    let _ = writeln!(s, "  always @* begin");
    let _ = writeln!(s, "    case ({sel})");
    for i in 0..n {
        let label = lit(style, sel_width, u64::from(i));
        if i == n - 1 && style.case_default {
            let _ = writeln!(s, "      default: {y} = d{i};");
        } else {
            let _ = writeln!(s, "      {label}: {y} = d{i};");
        }
    }
    let _ = writeln!(s, "    endcase");
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    let mut ports = vec![("select".into(), sel), ("result".into(), y)];
    for i in 0..n {
        ports.push((format!("data{i}"), format!("d{i}")));
    }
    Rendered { source: s, ports }
}

pub(crate) fn decoder(width: u32, style: &StyleOptions) -> Rendered {
    let n = 1u32 << width;
    let en = style.naming.port("enable");
    let y = style.naming.port("result");
    let name = format!("decoder_{width}to{n}");
    let mut s = String::new();
    header(&mut s, style, &format!("{width}-to-{n} binary decoder with enable."));
    let inhi = width - 1;
    let outhi = n - 1;
    let _ =
        writeln!(s, "module {name}(input [{inhi}:0] addr, input {en}, output [{outhi}:0] {y});");
    let one = lit(style, n, 1);
    let _ = writeln!(
        s,
        "  assign {y} = {en} ? ({one} << addr) : {};{}",
        lit(style, n, 0),
        inline(style, "one-hot when enabled")
    );
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![("addr".into(), "addr".into()), ("enable".into(), en), ("result".into(), y)],
    }
}

pub(crate) fn priority_encoder(width: u32, style: &StyleOptions) -> Rendered {
    let n = 1u32 << width;
    let y = style.naming.port("result");
    let name = format!("priority_encoder_{width}");
    let inhi = n - 1;
    let outhi = width - 1;
    let mut s = String::new();
    header(
        &mut s,
        style,
        &format!("{n}-line priority encoder; highest set bit wins, valid flags any input."),
    );
    let _ = writeln!(
        s,
        "module {name}(input [{inhi}:0] req, output reg [{outhi}:0] {y}, output valid);"
    );
    let _ = writeln!(s, "  assign valid = |req;");
    let _ = writeln!(s, "  integer i;");
    let _ = writeln!(s, "  always @* begin");
    let _ = writeln!(s, "    {y} = {};", lit(style, width, 0));
    let _ = writeln!(s, "    for (i = 0; i < {n}; i = i + 1) begin");
    let _ = writeln!(
        s,
        "      if (req[i]) {y} = i[{outhi}:0];{}",
        inline(style, "later iterations take priority")
    );
    let _ = writeln!(s, "    end");
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("req".into(), "req".into()),
            ("result".into(), y),
            ("valid".into(), "valid".into()),
        ],
    }
}

pub(crate) fn parity(width: u32, even: bool, style: &StyleOptions) -> Rendered {
    let y = style.naming.port("result");
    let kind = if even { "even" } else { "odd" };
    let name = format!("{kind}_parity_{width}");
    let hi = width - 1;
    let mut s = String::new();
    header(&mut s, style, &format!("{kind} parity generator over a {width}-bit word."));
    let _ = writeln!(s, "module {name}(input [{hi}:0] data, output {y});");
    if even {
        let _ = writeln!(
            s,
            "  assign {y} = ^data;{}",
            inline(style, "xor-reduce: 1 when odd number of ones")
        );
    } else {
        let _ = writeln!(s, "  assign {y} = ~^data;");
    }
    s.push_str("endmodule\n");
    Rendered { source: s, ports: vec![("data".into(), "data".into()), ("result".into(), y)] }
}

pub(crate) fn alu(width: u32, style: &StyleOptions) -> Rendered {
    let a = style.naming.port("operand_a");
    let b = style.naming.port("operand_b");
    let y = style.naming.port("result");
    let name = format!("alu_{width}");
    let hi = width - 1;
    let mut s = String::new();
    header(
        &mut s,
        style,
        &format!("{width}-bit ALU: 000 add, 001 sub, 010 and, 011 or, 100 xor, 101 slt, 110 shl, 111 shr."),
    );
    let _ = writeln!(
        s,
        "module {name}(input [{hi}:0] {a}, input [{hi}:0] {b}, input [2:0] op, output reg [{hi}:0] {y}, output zero);"
    );
    let _ = writeln!(s, "  assign zero = {y} == {};", lit(style, width, 0));
    let _ = writeln!(s, "  always @* begin");
    let _ = writeln!(s, "    case (op)");
    let cases = [
        ("add", format!("{a} + {b}")),
        ("sub", format!("{a} - {b}")),
        ("and", format!("{a} & {b}")),
        ("or", format!("{a} | {b}")),
        ("xor", format!("{a} ^ {b}")),
        ("slt", format!("{{{}{{1'b0}}}} + ({a} < {b})", width - 1)),
        ("shl", format!("{a} << {b}[2:0]")),
        ("shr", format!("{a} >> {b}[2:0]")),
    ];
    for (i, (opname, expr)) in cases.iter().enumerate() {
        let is_last = i == cases.len() - 1;
        if is_last && style.case_default {
            let _ = writeln!(s, "      default: {y} = {expr};{}", inline(style, opname));
        } else {
            let _ = writeln!(
                s,
                "      {}: {y} = {expr};{}",
                lit(style, 3, i as u64),
                inline(style, opname)
            );
        }
    }
    if !style.case_default {
        // without a default arm the case covers all 8 op codes explicitly
    }
    let _ = writeln!(s, "    endcase");
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("operand_a".into(), a),
            ("operand_b".into(), b),
            ("op".into(), "op".into()),
            ("result".into(), y),
            ("zero".into(), "zero".into()),
        ],
    }
}

pub(crate) fn bin_to_gray(width: u32, style: &StyleOptions) -> Rendered {
    let y = style.naming.port("result");
    let name = format!("bin_to_gray_{width}");
    let hi = width - 1;
    let mut s = String::new();
    header(&mut s, style, &format!("{width}-bit binary to Gray code converter."));
    let _ = writeln!(s, "module {name}(input [{hi}:0] bin, output [{hi}:0] {y});");
    let _ =
        writeln!(s, "  assign {y} = bin ^ (bin >> 1);{}", inline(style, "classic gray encoding"));
    s.push_str("endmodule\n");
    Rendered { source: s, ports: vec![("bin".into(), "bin".into()), ("result".into(), y)] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_verilog::Simulator;

    #[test]
    fn mux4_selects() {
        let r = mux(2, 8, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "mux4_8").unwrap();
        for (i, v) in [11u64, 22, 33, 44].iter().enumerate() {
            sim.set(&format!("d{i}"), *v).unwrap();
        }
        for i in 0..4u64 {
            sim.set("sel", i).unwrap();
            assert_eq!(sim.get("y").unwrap().as_u64(), [11u64, 22, 33, 44][i as usize]);
        }
    }

    #[test]
    fn decoder_one_hot() {
        let r = decoder(3, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "decoder_3to8").unwrap();
        sim.set("en", 1).unwrap();
        for a in 0..8u64 {
            sim.set("addr", a).unwrap();
            assert_eq!(sim.get("y").unwrap().as_u64(), 1 << a);
        }
        sim.set("en", 0).unwrap();
        assert_eq!(sim.get("y").unwrap().as_u64(), 0);
    }

    #[test]
    fn priority_encoder_prefers_msb() {
        let r = priority_encoder(3, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "priority_encoder_3").unwrap();
        sim.set("req", 0b0010_1001).unwrap();
        assert_eq!(sim.get("y").unwrap().as_u64(), 5);
        assert_eq!(sim.get("valid").unwrap().as_u64(), 1);
        sim.set("req", 0).unwrap();
        assert_eq!(sim.get("valid").unwrap().as_u64(), 0);
    }

    #[test]
    fn parity_both_kinds() {
        let r = parity(8, true, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "even_parity_8").unwrap();
        sim.set("data", 0b0110_0001).unwrap();
        assert_eq!(sim.get("y").unwrap().as_u64(), 1, "three ones -> odd count -> bit set");
        let r = parity(8, false, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "odd_parity_8").unwrap();
        sim.set("data", 0b0110_0001).unwrap();
        assert_eq!(sim.get("y").unwrap().as_u64(), 0);
    }

    #[test]
    fn alu_all_ops() {
        let r = alu(8, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "alu_8").unwrap();
        sim.set("a", 12).unwrap();
        sim.set("b", 5).unwrap();
        let expect = [17u64, 7, 4, 13, 9, 0, 12 << 5 & 0xFF, 0];
        for (op, e) in expect.iter().enumerate() {
            sim.set("op", op as u64).unwrap();
            assert_eq!(sim.get("y").unwrap().as_u64(), *e, "op={op}");
        }
        sim.set("b", 200).unwrap();
        sim.set("op", 5).unwrap();
        assert_eq!(sim.get("y").unwrap().as_u64(), 1, "slt");
    }

    #[test]
    fn gray_conversion() {
        let r = bin_to_gray(4, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "bin_to_gray_4").unwrap();
        for b in 0..16u64 {
            sim.set("bin", b).unwrap();
            assert_eq!(sim.get("y").unwrap().as_u64(), b ^ (b >> 1));
        }
    }
}
