//! Arithmetic family generators: adders, subtractors, multipliers,
//! comparators.

use super::{header, inline, Rendered};
use crate::style::StyleOptions;
use std::fmt::Write as _;

pub(crate) fn half_adder(style: &StyleOptions) -> Rendered {
    let a = style.naming.port("operand_a");
    let b = style.naming.port("operand_b");
    let sum = style.naming.port("sum");
    let cout = style.naming.port("carry_out");
    let mut s = String::new();
    header(&mut s, style, "Half adder: single-bit add without carry input.");
    let _ = writeln!(s, "module half_adder(input {a}, input {b}, output {sum}, output {cout});");
    let _ = writeln!(s, "  assign {sum} = {a} ^ {b};{}", inline(style, "sum is the XOR"));
    let _ = writeln!(s, "  assign {cout} = {a} & {b};{}", inline(style, "carry is the AND"));
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("operand_a".into(), a),
            ("operand_b".into(), b),
            ("sum".into(), sum),
            ("carry_out".into(), cout),
        ],
    }
}

pub(crate) fn full_adder(style: &StyleOptions) -> Rendered {
    let a = style.naming.port("operand_a");
    let b = style.naming.port("operand_b");
    let cin = style.naming.port("carry_in");
    let sum = style.naming.port("sum");
    let cout = style.naming.port("carry_out");
    let mut s = String::new();
    header(&mut s, style, "Full adder: single-bit add with carry input.");
    let _ = writeln!(
        s,
        "module full_adder(input {a}, input {b}, input {cin}, output {sum}, output {cout});"
    );
    let _ = writeln!(s, "  assign {sum} = {a} ^ {b} ^ {cin};");
    let _ = writeln!(
        s,
        "  assign {cout} = ({a} & {b}) | ({a} & {cin}) | ({b} & {cin});{}",
        inline(style, "majority function")
    );
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("operand_a".into(), a),
            ("operand_b".into(), b),
            ("carry_in".into(), cin),
            ("sum".into(), sum),
            ("carry_out".into(), cout),
        ],
    }
}

pub(crate) fn ripple_carry_adder(width: u32, style: &StyleOptions) -> Rendered {
    let a = style.naming.port("operand_a");
    let b = style.naming.port("operand_b");
    let cin = style.naming.port("carry_in");
    let sum = style.naming.port("sum");
    let cout = style.naming.port("carry_out");
    let name = format!("ripple_carry_adder_{width}");
    let hi = width - 1;
    let mut s = String::new();
    header(&mut s, style, &format!("{width}-bit ripple-carry adder built from full-adder cells."));
    let _ = writeln!(
        s,
        "module {name}(input [{hi}:0] {a}, input [{hi}:0] {b}, input {cin}, output [{hi}:0] {sum}, output {cout});"
    );
    if width > 1 {
        let _ = writeln!(s, "  wire [{}:0] carry;", width - 2);
    }
    for i in 0..width {
        let ci = if i == 0 { cin.clone() } else { format!("carry[{}]", i - 1) };
        let co = if i == hi { cout.clone() } else { format!("carry[{i}]") };
        let _ = writeln!(
            s,
            "  full_adder fa{i}(.a({a}[{i}]), .b({b}[{i}]), .cin({ci}), .sum({sum}[{i}]), .cout({co}));"
        );
    }
    s.push_str("endmodule\n\n");
    // The cell, with fixed canonical port names so instantiation is stable
    // across naming schemes.
    header(&mut s, style, "Full-adder cell.");
    s.push_str(
        "module full_adder(input a, input b, input cin, output sum, output cout);\n  \
         assign sum = a ^ b ^ cin;\n  \
         assign cout = (a & b) | (a & cin) | (b & cin);\nendmodule\n",
    );
    Rendered {
        source: s,
        ports: vec![
            ("operand_a".into(), a),
            ("operand_b".into(), b),
            ("carry_in".into(), cin),
            ("sum".into(), sum),
            ("carry_out".into(), cout),
        ],
    }
}

pub(crate) fn behavioral_adder(width: u32, style: &StyleOptions) -> Rendered {
    let a = style.naming.port("operand_a");
    let b = style.naming.port("operand_b");
    let cin = style.naming.port("carry_in");
    let sum = style.naming.port("sum");
    let cout = style.naming.port("carry_out");
    let hi = width - 1;
    let mut s = String::new();
    header(&mut s, style, &format!("{width}-bit behavioural adder with carry in and out."));
    let _ = writeln!(
        s,
        "module adder_{width}(input [{hi}:0] {a}, input [{hi}:0] {b}, input {cin}, output [{hi}:0] {sum}, output {cout});"
    );
    let _ = writeln!(
        s,
        "  assign {{{cout}, {sum}}} = {a} + {b} + {cin};{}",
        inline(style, "single-expression carry-propagate add")
    );
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("operand_a".into(), a),
            ("operand_b".into(), b),
            ("carry_in".into(), cin),
            ("sum".into(), sum),
            ("carry_out".into(), cout),
        ],
    }
}

pub(crate) fn addsub(width: u32, style: &StyleOptions) -> Rendered {
    let a = style.naming.port("operand_a");
    let b = style.naming.port("operand_b");
    let res = style.naming.port("result");
    let hi = width - 1;
    let mut s = String::new();
    header(&mut s, style, &format!("{width}-bit adder/subtractor: mode 0 adds, mode 1 subtracts."));
    let _ = writeln!(
        s,
        "module addsub_{width}(input [{hi}:0] {a}, input [{hi}:0] {b}, input mode, output [{hi}:0] {res});"
    );
    let _ = writeln!(s, "  wire [{hi}:0] b_eff;");
    let _ = writeln!(
        s,
        "  assign b_eff = mode ? ~{b} : {b};{}",
        inline(style, "invert for subtraction")
    );
    let _ = writeln!(
        s,
        "  assign {res} = {a} + b_eff + mode;{}",
        inline(style, "two's complement add")
    );
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("operand_a".into(), a),
            ("operand_b".into(), b),
            ("mode".into(), "mode".into()),
            ("result".into(), res),
        ],
    }
}

pub(crate) fn multiplier(width: u32, style: &StyleOptions) -> Rendered {
    let a = style.naming.port("operand_a");
    let b = style.naming.port("operand_b");
    let p = style.naming.port("product");
    let hi = width - 1;
    let phi = 2 * width - 1;
    let mut s = String::new();
    header(&mut s, style, &format!("{width}x{width} unsigned combinational multiplier."));
    let _ = writeln!(
        s,
        "module multiplier_{width}(input [{hi}:0] {a}, input [{hi}:0] {b}, output [{phi}:0] {p});"
    );
    let _ = writeln!(s, "  assign {p} = {a} * {b};");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![("operand_a".into(), a), ("operand_b".into(), b), ("product".into(), p)],
    }
}

pub(crate) fn comparator(width: u32, style: &StyleOptions) -> Rendered {
    let a = style.naming.port("operand_a");
    let b = style.naming.port("operand_b");
    let hi = width - 1;
    let mut s = String::new();
    header(&mut s, style, &format!("{width}-bit unsigned comparator with lt/eq/gt outputs."));
    let _ = writeln!(
        s,
        "module comparator_{width}(input [{hi}:0] {a}, input [{hi}:0] {b}, output lt, output eq, output gt);"
    );
    let _ = writeln!(s, "  assign lt = {a} < {b};");
    let _ = writeln!(s, "  assign eq = {a} == {b};");
    let _ = writeln!(s, "  assign gt = {a} > {b};");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("operand_a".into(), a),
            ("operand_b".into(), b),
            ("lt".into(), "lt".into()),
            ("eq".into(), "eq".into()),
            ("gt".into(), "gt".into()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_verilog::Simulator;

    #[test]
    fn behavioral_adder_adds() {
        let r = behavioral_adder(8, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "adder_8").unwrap();
        sim.set("a", 123).unwrap();
        sim.set("b", 99).unwrap();
        sim.set("cin", 1).unwrap();
        assert_eq!(sim.get("sum").unwrap().as_u64(), 223);
        assert_eq!(sim.get("cout").unwrap().as_u64(), 0);
    }

    #[test]
    fn ripple_matches_behavioral() {
        let style = StyleOptions::clean();
        let r = ripple_carry_adder(4, &style);
        let mut sim = Simulator::from_source(&r.source, "ripple_carry_adder_4").unwrap();
        for a in [0u64, 3, 7, 15] {
            for b in [0u64, 1, 8, 15] {
                for cin in [0u64, 1] {
                    sim.set("a", a).unwrap();
                    sim.set("b", b).unwrap();
                    sim.set("cin", cin).unwrap();
                    let got =
                        (sim.get("cout").unwrap().as_u64() << 4) | sim.get("sum").unwrap().as_u64();
                    assert_eq!(got, a + b + cin);
                }
            }
        }
    }

    #[test]
    fn addsub_subtracts() {
        let r = addsub(8, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "addsub_8").unwrap();
        sim.set("a", 50).unwrap();
        sim.set("b", 20).unwrap();
        sim.set("mode", 1).unwrap();
        assert_eq!(sim.get("y").unwrap().as_u64(), 30);
        sim.set("mode", 0).unwrap();
        assert_eq!(sim.get("y").unwrap().as_u64(), 70);
    }

    #[test]
    fn comparator_compares() {
        let r = comparator(8, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "comparator_8").unwrap();
        sim.set("a", 5).unwrap();
        sim.set("b", 9).unwrap();
        assert_eq!(sim.get("lt").unwrap().as_u64(), 1);
        assert_eq!(sim.get("eq").unwrap().as_u64(), 0);
        sim.set("b", 5).unwrap();
        assert_eq!(sim.get("eq").unwrap().as_u64(), 1);
    }

    #[test]
    fn multiplier_multiplies() {
        let r = multiplier(6, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "multiplier_6").unwrap();
        sim.set("a", 31).unwrap();
        sim.set("b", 17).unwrap();
        assert_eq!(sim.get("p").unwrap().as_u64(), 31 * 17);
    }
}
