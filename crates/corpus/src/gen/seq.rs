//! Sequential family generators: counters, registers, shift structures,
//! FSMs.

use super::{header, inline, lit, nb, Rendered};
use crate::style::StyleOptions;
use std::fmt::Write as _;

fn clk_rst(style: &StyleOptions) -> (String, String) {
    (style.naming.port("clock"), style.naming.port("reset"))
}

pub(crate) fn counter(width: u32, style: &StyleOptions) -> Rendered {
    let (clk, rst) = clk_rst(style);
    let en = style.naming.port("enable");
    let q = style.naming.port("count");
    let name = format!("counter_{width}");
    let hi = width - 1;
    let op = nb(style);
    let mut s = String::new();
    header(&mut s, style, &format!("{width}-bit synchronous up counter with enable."));
    let _ = writeln!(
        s,
        "module {name}(input {clk}, input {rst}, input {en}, output reg [{hi}:0] {q});"
    );
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(s, "    if ({rst}) {q} {op} {};", lit(style, width, 0));
    let _ = writeln!(
        s,
        "    else if ({en}) {q} {op} {q} + {};{}",
        lit(style, width, 1),
        inline(style, "wraps at 2^WIDTH")
    );
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("clock".into(), clk),
            ("reset".into(), rst),
            ("enable".into(), en),
            ("count".into(), q),
        ],
    }
}

pub(crate) fn updown_counter(width: u32, style: &StyleOptions) -> Rendered {
    let (clk, rst) = clk_rst(style);
    let q = style.naming.port("count");
    let name = format!("updown_counter_{width}");
    let hi = width - 1;
    let op = nb(style);
    let mut s = String::new();
    header(&mut s, style, &format!("{width}-bit up/down counter: up=1 counts up, else down."));
    let _ =
        writeln!(s, "module {name}(input {clk}, input {rst}, input up, output reg [{hi}:0] {q});");
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(s, "    if ({rst}) {q} {op} {};", lit(style, width, 0));
    let _ = writeln!(s, "    else if (up) {q} {op} {q} + {};", lit(style, width, 1));
    let _ = writeln!(s, "    else {q} {op} {q} - {};", lit(style, width, 1));
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("clock".into(), clk),
            ("reset".into(), rst),
            ("up".into(), "up".into()),
            ("count".into(), q),
        ],
    }
}

pub(crate) fn mod_counter(modulus: u32, style: &StyleOptions) -> Rendered {
    let (clk, rst) = clk_rst(style);
    let q = style.naming.port("count");
    let name = format!("mod{modulus}_counter");
    let width = 32 - (modulus - 1).leading_zeros().min(31);
    let width = width.max(1);
    let hi = width - 1;
    let op = nb(style);
    let mut s = String::new();
    header(&mut s, style, &format!("Modulo-{modulus} counter with terminal count output tc."));
    let _ =
        writeln!(s, "module {name}(input {clk}, input {rst}, output reg [{hi}:0] {q}, output tc);");
    let last = lit(style, width, u64::from(modulus - 1));
    let _ = writeln!(s, "  assign tc = {q} == {last};");
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(s, "    if ({rst}) {q} {op} {};", lit(style, width, 0));
    let _ = writeln!(
        s,
        "    else if (tc) {q} {op} {};{}",
        lit(style, width, 0),
        inline(style, "wrap at the modulus")
    );
    let _ = writeln!(s, "    else {q} {op} {q} + {};", lit(style, width, 1));
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("clock".into(), clk),
            ("reset".into(), rst),
            ("count".into(), q),
            ("tc".into(), "tc".into()),
        ],
    }
}

pub(crate) fn dff(style: &StyleOptions) -> Rendered {
    let (clk, rst) = clk_rst(style);
    let en = style.naming.port("enable");
    let d = style.naming.port("data_in");
    let q = style.naming.port("data_out");
    let op = nb(style);
    let mut s = String::new();
    header(&mut s, style, "D flip-flop with asynchronous reset and clock enable.");
    let _ = writeln!(
        s,
        "module dff_en(input {clk}, input {rst}, input {en}, input {d}, output reg {q});"
    );
    let _ = writeln!(s, "  always @(posedge {clk} or posedge {rst}) begin");
    let _ = writeln!(s, "    if ({rst}) {q} {op} 1'b0;");
    let _ = writeln!(s, "    else if ({en}) {q} {op} {d};");
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("clock".into(), clk),
            ("reset".into(), rst),
            ("enable".into(), en),
            ("data_in".into(), d),
            ("data_out".into(), q),
        ],
    }
}

pub(crate) fn shift_register(width: u32, style: &StyleOptions) -> Rendered {
    let (clk, rst) = clk_rst(style);
    let sin = style.naming.port("serial_in");
    let q = style.naming.port("data_out");
    let name = format!("shift_register_{width}");
    let hi = width - 1;
    let mut s = String::new();
    header(
        &mut s,
        style,
        &format!("{width}-bit serial-in parallel-out shift register (shifts toward the MSB)."),
    );
    let _ = writeln!(
        s,
        "module {name}(input {clk}, input {rst}, input {sin}, output reg [{hi}:0] {q});"
    );
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(s, "    if ({rst}) {q} <= {};", lit(style, width, 0));
    let _ = writeln!(
        s,
        "    else {q} <= {{{q}[{}:0], {sin}}};{}",
        hi - 1,
        inline(style, "shift left, serial bit enters LSB")
    );
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("clock".into(), clk),
            ("reset".into(), rst),
            ("serial_in".into(), sin),
            ("data_out".into(), q),
        ],
    }
}

/// Taps (XNOR form) giving long cycles for small widths.
fn lfsr_taps(width: u32) -> (u32, u32) {
    match width {
        3 => (2, 1),
        4 => (3, 2),
        5 => (4, 2),
        6 => (5, 4),
        7 => (6, 5),
        _ => (7, 5), // width 8
    }
}

pub(crate) fn lfsr(width: u32, style: &StyleOptions) -> Rendered {
    let (clk, rst) = clk_rst(style);
    let q = style.naming.port("data_out");
    let name = format!("lfsr_{width}");
    let hi = width - 1;
    let (t1, t2) = lfsr_taps(width);
    let mut s = String::new();
    header(
        &mut s,
        style,
        &format!("{width}-bit Fibonacci LFSR with XNOR feedback (taps {t1}, {t2})."),
    );
    let _ = writeln!(s, "module {name}(input {clk}, input {rst}, output reg [{hi}:0] {q});");
    let _ = writeln!(s, "  wire fb;");
    let _ = writeln!(
        s,
        "  assign fb = {q}[{t1}] ~^ {q}[{t2}];{}",
        inline(style, "xnor feedback avoids lock-up at zero")
    );
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(s, "    if ({rst}) {q} <= {};", lit(style, width, 0));
    let _ = writeln!(s, "    else {q} <= {{{q}[{}:0], fb}};", hi - 1);
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![("clock".into(), clk), ("reset".into(), rst), ("data_out".into(), q)],
    }
}

pub(crate) fn edge_detector(style: &StyleOptions) -> Rendered {
    let (clk, rst) = clk_rst(style);
    let d = style.naming.port("data_in");
    let mut s = String::new();
    header(
        &mut s,
        style,
        "Rising-edge detector: pulse output for one cycle after 0->1 on the input.",
    );
    let _ = writeln!(s, "module edge_detector(input {clk}, input {rst}, input {d}, output pulse);");
    let _ = writeln!(s, "  reg prev;");
    let _ = writeln!(s, "  assign pulse = {d} & ~prev;");
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(s, "    if ({rst}) prev <= 1'b0;");
    let _ = writeln!(s, "    else prev <= {d};");
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("clock".into(), clk),
            ("reset".into(), rst),
            ("data_in".into(), d),
            ("pulse".into(), "pulse".into()),
        ],
    }
}

pub(crate) fn gray_counter(width: u32, style: &StyleOptions) -> Rendered {
    let (clk, rst) = clk_rst(style);
    let q = style.naming.port("count");
    let name = format!("gray_counter_{width}");
    let hi = width - 1;
    let mut s = String::new();
    header(&mut s, style, &format!("{width}-bit Gray-code counter (binary core, gray output)."));
    let _ = writeln!(s, "module {name}(input {clk}, input {rst}, output [{hi}:0] {q});");
    let _ = writeln!(s, "  reg [{hi}:0] bin;");
    let _ = writeln!(s, "  assign {q} = bin ^ (bin >> 1);");
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(s, "    if ({rst}) bin <= {};", lit(style, width, 0));
    let _ = writeln!(s, "    else bin <= bin + {};", lit(style, width, 1));
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![("clock".into(), clk), ("reset".into(), rst), ("count".into(), q)],
    }
}

pub(crate) fn sequence_detector(pattern: &[bool], style: &StyleOptions) -> Rendered {
    let (clk, rst) = clk_rst(style);
    let x = style.naming.port("data_in");
    let bits: String = pattern.iter().map(|b| if *b { '1' } else { '0' }).collect();
    let name = format!("seq_detector_{bits}");
    let n = pattern.len() as u32;
    // Shift-register implementation: robust for overlapping matches and far
    // simpler to keep correct across arbitrary patterns than explicit FSM
    // states — the FSM flavour is exercised by the state-machine families in
    // hand-written eval problems.
    let mut s = String::new();
    header(
        &mut s,
        style,
        &format!("Detects the bit sequence {bits} (MSB first, overlapping) on a serial input."),
    );
    let _ = writeln!(s, "module {name}(input {clk}, input {rst}, input {x}, output hit);");
    let hi = n - 1;
    let _ = writeln!(s, "  reg [{hi}:0] window;");
    let patval: u64 = pattern.iter().fold(0, |acc, b| (acc << 1) | u64::from(*b));
    let _ = writeln!(
        s,
        "  assign hit = window == {};{}",
        lit(style, n, patval),
        inline(style, "window holds the last bits seen")
    );
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(s, "    if ({rst}) window <= {};", lit(style, n, 0));
    if n >= 2 {
        let _ = writeln!(s, "    else window <= {{window[{}:0], {x}}};", hi - 1);
    } else {
        let _ = writeln!(s, "    else window <= {x};");
    }
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("clock".into(), clk),
            ("reset".into(), rst),
            ("data_in".into(), x),
            ("hit".into(), "hit".into()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_verilog::Simulator;

    #[test]
    fn counter_counts() {
        let r = counter(8, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "counter_8").unwrap();
        sim.set("rst", 1).unwrap();
        sim.clock("clk").unwrap();
        sim.set("rst", 0).unwrap();
        sim.set("en", 1).unwrap();
        for _ in 0..5 {
            sim.clock("clk").unwrap();
        }
        assert_eq!(sim.get("count").unwrap().as_u64(), 5);
    }

    #[test]
    fn updown_counts_both_ways() {
        let r = updown_counter(4, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "updown_counter_4").unwrap();
        sim.set("rst", 1).unwrap();
        sim.clock("clk").unwrap();
        sim.set("rst", 0).unwrap();
        sim.set("up", 1).unwrap();
        sim.clock("clk").unwrap();
        sim.clock("clk").unwrap();
        sim.clock("clk").unwrap();
        assert_eq!(sim.get("count").unwrap().as_u64(), 3);
        sim.set("up", 0).unwrap();
        sim.clock("clk").unwrap();
        assert_eq!(sim.get("count").unwrap().as_u64(), 2);
    }

    #[test]
    fn mod_counter_wraps() {
        let r = mod_counter(5, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "mod5_counter").unwrap();
        sim.set("rst", 1).unwrap();
        sim.clock("clk").unwrap();
        sim.set("rst", 0).unwrap();
        let mut seen = Vec::new();
        for _ in 0..12 {
            seen.push(sim.get("count").unwrap().as_u64());
            sim.clock("clk").unwrap();
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1]);
    }

    #[test]
    fn dff_respects_enable_and_async_reset() {
        let r = dff(&StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "dff_en").unwrap();
        sim.set("en", 1).unwrap();
        sim.set("d", 1).unwrap();
        sim.clock("clk").unwrap();
        assert_eq!(sim.get("q").unwrap().as_u64(), 1);
        sim.set("en", 0).unwrap();
        sim.set("d", 0).unwrap();
        sim.clock("clk").unwrap();
        assert_eq!(sim.get("q").unwrap().as_u64(), 1, "enable off holds value");
        sim.set("rst", 1).unwrap();
        assert_eq!(sim.get("q").unwrap().as_u64(), 0, "async reset");
    }

    #[test]
    fn shift_register_shifts() {
        let r = shift_register(4, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "shift_register_4").unwrap();
        sim.set("rst", 1).unwrap();
        sim.clock("clk").unwrap();
        sim.set("rst", 0).unwrap();
        for bit in [1u64, 0, 1, 1] {
            sim.set("sin", bit).unwrap();
            sim.clock("clk").unwrap();
        }
        assert_eq!(sim.get("q").unwrap().as_u64(), 0b1011);
    }

    #[test]
    fn lfsr_cycles_without_lockup() {
        let r = lfsr(4, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "lfsr_4").unwrap();
        sim.set("rst", 1).unwrap();
        sim.clock("clk").unwrap();
        sim.set("rst", 0).unwrap();
        let mut states = std::collections::HashSet::new();
        for _ in 0..15 {
            states.insert(sim.get("q").unwrap().as_u64());
            sim.clock("clk").unwrap();
        }
        assert!(states.len() >= 8, "LFSR visits many states, got {}", states.len());
    }

    #[test]
    fn edge_detector_pulses_once() {
        let r = edge_detector(&StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "edge_detector").unwrap();
        sim.set("rst", 1).unwrap();
        sim.clock("clk").unwrap();
        sim.set("rst", 0).unwrap();
        sim.set("d", 1).unwrap();
        assert_eq!(sim.get("pulse").unwrap().as_u64(), 1, "edge seen before clocking prev");
        sim.clock("clk").unwrap();
        assert_eq!(sim.get("pulse").unwrap().as_u64(), 0, "pulse cleared after clock");
    }

    #[test]
    fn gray_counter_changes_one_bit_at_a_time() {
        let r = gray_counter(4, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "gray_counter_4").unwrap();
        sim.set("rst", 1).unwrap();
        sim.clock("clk").unwrap();
        sim.set("rst", 0).unwrap();
        let mut prev = sim.get("count").unwrap().as_u64();
        for _ in 0..16 {
            sim.clock("clk").unwrap();
            let cur = sim.get("count").unwrap().as_u64();
            assert_eq!((prev ^ cur).count_ones(), 1);
            prev = cur;
        }
    }

    #[test]
    fn sequence_detector_finds_overlapping() {
        let pat = [true, false, true];
        let r = sequence_detector(&pat, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "seq_detector_101").unwrap();
        sim.set("rst", 1).unwrap();
        sim.clock("clk").unwrap();
        sim.set("rst", 0).unwrap();
        let stream = [1u64, 0, 1, 0, 1, 1, 0, 1];
        let mut hits = Vec::new();
        for x in stream {
            sim.set("d", x).unwrap();
            sim.clock("clk").unwrap();
            hits.push(sim.get("hit").unwrap().as_u64());
        }
        // 101 at positions 2 and 4 (overlapping), and again at 7
        assert_eq!(hits, vec![0, 0, 1, 0, 1, 0, 0, 1]);
    }
}
