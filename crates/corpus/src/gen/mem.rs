//! Memory family generators: RAM and register file.

use super::{header, inline, lit, Rendered};
use crate::style::StyleOptions;
use std::fmt::Write as _;

pub(crate) fn ram(addr_width: u32, data_width: u32, style: &StyleOptions) -> Rendered {
    let (clk, we) = (style.naming.port("clock"), "we".to_owned());
    let name = format!("ram_{addr_width}x{data_width}");
    let words = 1u32 << addr_width;
    let ahi = addr_width - 1;
    let dhi = data_width - 1;
    let mut s = String::new();
    header(
        &mut s,
        style,
        &format!(
            "Single-port synchronous RAM: {words} words of {data_width} bits, read-after-write."
        ),
    );
    let _ = writeln!(
        s,
        "module {name}(input {clk}, input {we}, input [{ahi}:0] addr, input [{dhi}:0] din, output reg [{dhi}:0] dout);"
    );
    let _ = writeln!(s, "  reg [{dhi}:0] mem [0:{}];", words - 1);
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(s, "    if ({we}) mem[addr] <= din;{}", inline(style, "synchronous write"));
    let _ = writeln!(s, "    dout <= mem[addr];{}", inline(style, "registered read"));
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("clock".into(), clk),
            ("we".into(), we),
            ("addr".into(), "addr".into()),
            ("din".into(), "din".into()),
            ("dout".into(), "dout".into()),
        ],
    }
}

pub(crate) fn regfile(addr_width: u32, data_width: u32, style: &StyleOptions) -> Rendered {
    let clk = style.naming.port("clock");
    let name = format!("regfile_{addr_width}x{data_width}");
    let words = 1u32 << addr_width;
    let ahi = addr_width - 1;
    let dhi = data_width - 1;
    let mut s = String::new();
    header(
        &mut s,
        style,
        &format!("Register file: {words} x {data_width}-bit, one sync write port, one async read port; register 0 reads as zero."),
    );
    let _ = writeln!(
        s,
        "module {name}(input {clk}, input we, input [{ahi}:0] waddr, input [{dhi}:0] wdata, input [{ahi}:0] raddr, output [{dhi}:0] rdata);"
    );
    let _ = writeln!(s, "  reg [{dhi}:0] regs [0:{}];", words - 1);
    let zero = lit(style, data_width, 0);
    let _ = writeln!(
        s,
        "  assign rdata = raddr == {} ? {zero} : regs[raddr];{}",
        lit(style, addr_width, 0),
        inline(style, "x0 is hardwired to zero")
    );
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(s, "    if (we) regs[waddr] <= wdata;");
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("clock".into(), clk),
            ("we".into(), "we".into()),
            ("waddr".into(), "waddr".into()),
            ("wdata".into(), "wdata".into()),
            ("raddr".into(), "raddr".into()),
            ("rdata".into(), "rdata".into()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_verilog::Simulator;

    #[test]
    fn ram_stores_and_loads() {
        let r = ram(3, 8, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "ram_3x8").unwrap();
        for a in 0..8u64 {
            sim.set("we", 1).unwrap();
            sim.set("addr", a).unwrap();
            sim.set("din", a * 11).unwrap();
            sim.clock("clk").unwrap();
        }
        sim.set("we", 0).unwrap();
        for a in 0..8u64 {
            sim.set("addr", a).unwrap();
            sim.clock("clk").unwrap();
            assert_eq!(sim.get("dout").unwrap().as_u64(), (a * 11) & 0xFF);
        }
    }

    #[test]
    fn regfile_reads_async_and_zero_register() {
        let r = regfile(2, 8, &StyleOptions::clean());
        let mut sim = Simulator::from_source(&r.source, "regfile_2x8").unwrap();
        sim.set("we", 1).unwrap();
        sim.set("waddr", 2).unwrap();
        sim.set("wdata", 0x5A).unwrap();
        sim.clock("clk").unwrap();
        sim.set("we", 0).unwrap();
        sim.set("raddr", 2).unwrap();
        assert_eq!(sim.get("rdata").unwrap().as_u64(), 0x5A);
        sim.set("raddr", 0).unwrap();
        assert_eq!(sim.get("rdata").unwrap().as_u64(), 0, "register zero is hardwired");
    }
}
