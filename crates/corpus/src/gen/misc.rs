//! Additional circuit families: shifters, ring/Johnson/BCD counters,
//! seven-segment decoding, FIFOs, saturating counters, majority voters.

use super::{header, inline, lit, Rendered};
use crate::style::StyleOptions;
use std::fmt::Write as _;

pub(crate) fn barrel_shifter(width: u32, style: &StyleOptions) -> Rendered {
    let y = style.naming.port("result");
    let name = format!("barrel_shifter_{width}");
    let hi = width - 1;
    let shw = 32 - (width - 1).leading_zeros();
    let mut s = String::new();
    header(&mut s, style, &format!("{width}-bit barrel shifter (rotate left by amt)."));
    let _ = writeln!(
        s,
        "module {name}(input [{hi}:0] data, input [{}:0] amt, output [{hi}:0] {y});",
        shw - 1
    );
    let _ = writeln!(
        s,
        "  assign {y} = (data << amt) | (data >> ({width} - amt));{}",
        inline(style, "rotate = shift out | shift in")
    );
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("data".into(), "data".into()),
            ("amt".into(), "amt".into()),
            ("result".into(), y),
        ],
    }
}

pub(crate) fn johnson_counter(width: u32, style: &StyleOptions) -> Rendered {
    let (clk, rst) = (style.naming.port("clock"), style.naming.port("reset"));
    let q = style.naming.port("count");
    let name = format!("johnson_counter_{width}");
    let hi = width - 1;
    let mut s = String::new();
    header(
        &mut s,
        style,
        &format!("{width}-bit Johnson (twisted-ring) counter: 2*{width} state cycle."),
    );
    let _ = writeln!(s, "module {name}(input {clk}, input {rst}, output reg [{hi}:0] {q});");
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(s, "    if ({rst}) {q} <= {};", lit(style, width, 0));
    let _ = writeln!(
        s,
        "    else {q} <= {{{q}[{}:0], ~{q}[{hi}]}};{}",
        hi - 1,
        inline(style, "feed back the inverted MSB")
    );
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![("clock".into(), clk), ("reset".into(), rst), ("count".into(), q)],
    }
}

pub(crate) fn ring_counter(width: u32, style: &StyleOptions) -> Rendered {
    let (clk, rst) = (style.naming.port("clock"), style.naming.port("reset"));
    let q = style.naming.port("count");
    let name = format!("ring_counter_{width}");
    let hi = width - 1;
    let mut s = String::new();
    header(&mut s, style, &format!("{width}-bit one-hot ring counter."));
    let _ = writeln!(s, "module {name}(input {clk}, input {rst}, output reg [{hi}:0] {q});");
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(
        s,
        "    if ({rst}) {q} <= {};{}",
        lit(style, width, 1),
        inline(style, "reset to the one-hot seed")
    );
    let _ = writeln!(s, "    else {q} <= {{{q}[{}:0], {q}[{hi}]}};", hi - 1);
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![("clock".into(), clk), ("reset".into(), rst), ("count".into(), q)],
    }
}

pub(crate) fn bcd_counter(style: &StyleOptions) -> Rendered {
    let (clk, rst) = (style.naming.port("clock"), style.naming.port("reset"));
    let mut s = String::new();
    header(&mut s, style, "Two-digit BCD counter (00-99) with a carry-out pulse at 99.");
    let _ = writeln!(
        s,
        "module bcd_counter(input {clk}, input {rst}, output reg [3:0] ones, output reg [3:0] tens, output co);"
    );
    let nine = lit(style, 4, 9);
    let zero = lit(style, 4, 0);
    let one = lit(style, 4, 1);
    let _ = writeln!(s, "  assign co = ones == {nine} && tens == {nine};");
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(s, "    if ({rst}) begin ones <= {zero}; tens <= {zero}; end");
    let _ = writeln!(s, "    else if (ones == {nine}) begin");
    let _ = writeln!(s, "      ones <= {zero};");
    let _ = writeln!(s, "      if (tens == {nine}) tens <= {zero}; else tens <= tens + {one};");
    let _ = writeln!(s, "    end else ones <= ones + {one};");
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("clock".into(), clk),
            ("reset".into(), rst),
            ("ones".into(), "ones".into()),
            ("tens".into(), "tens".into()),
            ("co".into(), "co".into()),
        ],
    }
}

/// Segment patterns for 0–9 (active-high, gfedcba order).
pub(crate) const SEVEN_SEG: [u64; 10] =
    [0x3F, 0x06, 0x5B, 0x4F, 0x66, 0x6D, 0x7D, 0x07, 0x7F, 0x6F];

pub(crate) fn seven_seg(style: &StyleOptions) -> Rendered {
    let mut s = String::new();
    header(&mut s, style, "BCD to seven-segment decoder (active-high, gfedcba).");
    let _ = writeln!(s, "module seven_seg(input [3:0] digit, output reg [6:0] seg);");
    let _ = writeln!(s, "  always @* begin");
    let _ = writeln!(s, "    case (digit)");
    for (d, pat) in SEVEN_SEG.iter().enumerate() {
        let _ = writeln!(s, "      {}: seg = {};", lit(style, 4, d as u64), lit(style, 7, *pat));
    }
    let _ = writeln!(
        s,
        "      default: seg = {};{}",
        lit(style, 7, 0),
        inline(style, "blank for non-decimal inputs")
    );
    let _ = writeln!(s, "    endcase");
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![("digit".into(), "digit".into()), ("seg".into(), "seg".into())],
    }
}

pub(crate) fn fifo(addr_width: u32, data_width: u32, style: &StyleOptions) -> Rendered {
    let clk = style.naming.port("clock");
    let rst = style.naming.port("reset");
    let name = format!("fifo_{addr_width}x{data_width}");
    let depth = 1u32 << addr_width;
    let ahi = addr_width; // pointers carry an extra wrap bit
    let dhi = data_width - 1;
    let mut s = String::new();
    header(
        &mut s,
        style,
        &format!("Synchronous FIFO, {depth} entries x {data_width} bits, with full/empty flags."),
    );
    let _ = writeln!(
        s,
        "module {name}(input {clk}, input {rst}, input push, input pop, input [{dhi}:0] din, output [{dhi}:0] dout, output full, output empty);"
    );
    let _ = writeln!(s, "  reg [{dhi}:0] mem [0:{}];", depth - 1);
    let _ = writeln!(s, "  reg [{ahi}:0] wptr, rptr;");
    let _ = writeln!(s, "  assign empty = wptr == rptr;");
    let _ = writeln!(
        s,
        "  assign full = wptr[{}] != rptr[{}] && wptr[{}:0] == rptr[{}:0];{}",
        ahi,
        ahi,
        ahi - 1,
        ahi - 1,
        inline(style, "same index, different wrap bit")
    );
    let _ = writeln!(s, "  assign dout = mem[rptr[{}:0]];", ahi - 1);
    let one = lit(style, addr_width + 1, 1);
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(
        s,
        "    if ({rst}) begin wptr <= {z}; rptr <= {z}; end",
        z = lit(style, addr_width + 1, 0)
    );
    let _ = writeln!(s, "    else begin");
    let _ = writeln!(s, "      if (push && !full) begin");
    let _ = writeln!(s, "        mem[wptr[{}:0]] <= din;", ahi - 1);
    let _ = writeln!(s, "        wptr <= wptr + {one};");
    let _ = writeln!(s, "      end");
    let _ = writeln!(s, "      if (pop && !empty) rptr <= rptr + {one};");
    let _ = writeln!(s, "    end");
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("clock".into(), clk),
            ("reset".into(), rst),
            ("push".into(), "push".into()),
            ("pop".into(), "pop".into()),
            ("din".into(), "din".into()),
            ("dout".into(), "dout".into()),
            ("full".into(), "full".into()),
            ("empty".into(), "empty".into()),
        ],
    }
}

pub(crate) fn saturating_counter(width: u32, style: &StyleOptions) -> Rendered {
    let (clk, rst) = (style.naming.port("clock"), style.naming.port("reset"));
    let q = style.naming.port("count");
    let name = format!("sat_counter_{width}");
    let hi = width - 1;
    let max = (1u64 << width) - 1;
    let mut s = String::new();
    header(
        &mut s,
        style,
        &format!("{width}-bit saturating up/down counter (clamps at 0 and {max})."),
    );
    let _ = writeln!(
        s,
        "module {name}(input {clk}, input {rst}, input up, input down, output reg [{hi}:0] {q});"
    );
    let one = lit(style, width, 1);
    let maxlit = lit(style, width, max);
    let zero = lit(style, width, 0);
    let _ = writeln!(s, "  always @(posedge {clk}) begin");
    let _ = writeln!(s, "    if ({rst}) {q} <= {zero};");
    let _ = writeln!(s, "    else if (up && !down && {q} != {maxlit}) {q} <= {q} + {one};");
    let _ = writeln!(s, "    else if (down && !up && {q} != {zero}) {q} <= {q} - {one};");
    let _ = writeln!(s, "  end");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("clock".into(), clk),
            ("reset".into(), rst),
            ("up".into(), "up".into()),
            ("down".into(), "down".into()),
            ("count".into(), q),
        ],
    }
}

pub(crate) fn majority(style: &StyleOptions) -> Rendered {
    let y = style.naming.port("result");
    let mut s = String::new();
    header(&mut s, style, "Three-input majority voter.");
    let _ = writeln!(s, "module majority3(input a, input b, input c, output {y});");
    let _ = writeln!(s, "  assign {y} = (a & b) | (a & c) | (b & c);");
    s.push_str("endmodule\n");
    Rendered {
        source: s,
        ports: vec![
            ("a".into(), "a".into()),
            ("b".into(), "b".into()),
            ("c".into(), "c".into()),
            ("result".into(), y),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_verilog::Simulator;

    fn clean() -> StyleOptions {
        StyleOptions::clean()
    }

    #[test]
    fn barrel_rotates() {
        let r = barrel_shifter(8, &clean());
        let mut sim = Simulator::from_source(&r.source, "barrel_shifter_8").unwrap();
        sim.set("data", 0b1000_0001).unwrap();
        sim.set("amt", 1).unwrap();
        assert_eq!(sim.get("y").unwrap().as_u64(), 0b0000_0011);
        sim.set("amt", 4).unwrap();
        assert_eq!(sim.get("y").unwrap().as_u64(), 0b0001_1000);
    }

    #[test]
    fn johnson_cycles_2n_states() {
        let r = johnson_counter(4, &clean());
        let mut sim = Simulator::from_source(&r.source, "johnson_counter_4").unwrap();
        sim.set("rst", 1).unwrap();
        sim.clock("clk").unwrap();
        sim.set("rst", 0).unwrap();
        let mut states = Vec::new();
        for _ in 0..8 {
            states.push(sim.get("count").unwrap().as_u64());
            sim.clock("clk").unwrap();
        }
        assert_eq!(states, vec![0b0000, 0b0001, 0b0011, 0b0111, 0b1111, 0b1110, 0b1100, 0b1000]);
        assert_eq!(sim.get("count").unwrap().as_u64(), 0, "period 2n");
    }

    #[test]
    fn ring_rotates_one_hot() {
        let r = ring_counter(4, &clean());
        let mut sim = Simulator::from_source(&r.source, "ring_counter_4").unwrap();
        sim.set("rst", 1).unwrap();
        sim.clock("clk").unwrap();
        sim.set("rst", 0).unwrap();
        for expect in [1u64, 2, 4, 8, 1, 2] {
            assert_eq!(sim.get("count").unwrap().as_u64(), expect);
            sim.clock("clk").unwrap();
        }
    }

    #[test]
    fn bcd_counts_and_wraps() {
        let r = bcd_counter(&clean());
        let mut sim = Simulator::from_source(&r.source, "bcd_counter").unwrap();
        sim.set("rst", 1).unwrap();
        sim.clock("clk").unwrap();
        sim.set("rst", 0).unwrap();
        for _ in 0..99 {
            sim.clock("clk").unwrap();
        }
        assert_eq!(sim.get("ones").unwrap().as_u64(), 9);
        assert_eq!(sim.get("tens").unwrap().as_u64(), 9);
        assert_eq!(sim.get("co").unwrap().as_u64(), 1);
        sim.clock("clk").unwrap();
        assert_eq!(sim.get("ones").unwrap().as_u64(), 0);
        assert_eq!(sim.get("tens").unwrap().as_u64(), 0);
    }

    #[test]
    fn seven_seg_patterns() {
        let r = seven_seg(&clean());
        let mut sim = Simulator::from_source(&r.source, "seven_seg").unwrap();
        for (d, pat) in SEVEN_SEG.iter().enumerate() {
            sim.set("digit", d as u64).unwrap();
            assert_eq!(sim.get("seg").unwrap().as_u64(), *pat, "digit {d}");
        }
        sim.set("digit", 12).unwrap();
        assert_eq!(sim.get("seg").unwrap().as_u64(), 0, "blank for >9");
    }

    #[test]
    fn fifo_orders_and_flags() {
        let r = fifo(2, 8, &clean());
        let mut sim = Simulator::from_source(&r.source, "fifo_2x8").unwrap();
        sim.set("rst", 1).unwrap();
        sim.clock("clk").unwrap();
        sim.set("rst", 0).unwrap();
        assert_eq!(sim.get("empty").unwrap().as_u64(), 1);
        // push 4 values -> full
        sim.set("push", 1).unwrap();
        for v in [10u64, 20, 30, 40] {
            sim.set("din", v).unwrap();
            sim.clock("clk").unwrap();
        }
        assert_eq!(sim.get("full").unwrap().as_u64(), 1);
        // a 5th push is ignored
        sim.set("din", 99).unwrap();
        sim.clock("clk").unwrap();
        sim.set("push", 0).unwrap();
        // pop everything in order
        sim.set("pop", 1).unwrap();
        for expect in [10u64, 20, 30, 40] {
            assert_eq!(sim.get("dout").unwrap().as_u64(), expect);
            sim.clock("clk").unwrap();
        }
        assert_eq!(sim.get("empty").unwrap().as_u64(), 1);
    }

    #[test]
    fn saturating_counter_clamps() {
        let r = saturating_counter(2, &clean());
        let mut sim = Simulator::from_source(&r.source, "sat_counter_2").unwrap();
        sim.set("rst", 1).unwrap();
        sim.clock("clk").unwrap();
        sim.set("rst", 0).unwrap();
        sim.set("up", 1).unwrap();
        for _ in 0..6 {
            sim.clock("clk").unwrap();
        }
        assert_eq!(sim.get("count").unwrap().as_u64(), 3, "clamped at max");
        sim.set("up", 0).unwrap();
        sim.set("down", 1).unwrap();
        for _ in 0..6 {
            sim.clock("clk").unwrap();
        }
        assert_eq!(sim.get("count").unwrap().as_u64(), 0, "clamped at zero");
    }

    #[test]
    fn majority_votes() {
        let r = majority(&clean());
        let mut sim = Simulator::from_source(&r.source, "majority3").unwrap();
        for bits in 0..8u64 {
            sim.set("a", bits & 1).unwrap();
            sim.set("b", (bits >> 1) & 1).unwrap();
            sim.set("c", (bits >> 2) & 1).unwrap();
            let expect = u64::from(bits.count_ones() >= 2);
            assert_eq!(sim.get("y").unwrap().as_u64(), expect, "bits {bits:03b}");
        }
    }
}
