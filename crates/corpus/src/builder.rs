//! The corpus pool builder — the "GitHub scrape" substitute.
//!
//! Builds a noisy pool whose composition mirrors the paper's funnel
//! (§III-A.5): most files are usable after curation, a large minority have
//! dependency issues, and the rest are duplicates, syntax-broken, or
//! empty/broken. At paper scale 2.4 M collected → 692,238 curated
//! (≈29% survive with ranks, of which 430,461 are Layer-6 dependency/zero-
//! rank material); the default mix reproduces those proportions.

use crate::defect;
use crate::gen::generate;
use crate::llmgen;
use crate::sample::{Origin, RawSample, TruthLabel};
use crate::style::StyleOptions;
use crate::DesignFamily;
use pyranet_exec::{par_map, stream_seed, ExecConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Mix proportions for the scraped pool (must sum to ≤ 1; the remainder is
/// clean).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolMix {
    /// Fraction of empty/broken/non-module files.
    pub broken: f64,
    /// Fraction of exact/near duplicates.
    pub duplicates: f64,
    /// Fraction with syntax errors.
    pub syntax_errors: f64,
    /// Fraction with dependency issues.
    pub dependency_issues: f64,
    /// Fraction of style-degraded (but compilable) files.
    pub sloppy: f64,
}

impl Default for PoolMix {
    /// The paper-shaped default: scaled from 2.4 M → 692 k survivors with a
    /// heavy Layer-6 (dependency) band.
    fn default() -> Self {
        PoolMix {
            broken: 0.25,
            duplicates: 0.30,
            syntax_errors: 0.16,
            dependency_issues: 0.13,
            sloppy: 0.10,
        }
    }
}

/// Builder for a synthetic corpus pool.
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    seed: u64,
    scraped: usize,
    mix: PoolMix,
    with_llm_generation: bool,
    spec_samples: usize,
    threads: usize,
}

/// What sample index `i` will become; decided by a cheap sequential
/// planning pass so the expensive generation can fan out in parallel.
#[derive(Debug, Clone, Copy)]
enum Plan {
    Broken,
    /// Copies sample `donor` (always an earlier clean/sloppy index).
    Duplicate {
        donor: usize,
        prefix_comment: bool,
    },
    Syntax {
        family: usize,
    },
    Dependency {
        family: usize,
    },
    Sloppy {
        family: usize,
    },
    Clean {
        family: usize,
    },
}

/// Stream tags separating the builder's independent RNG domains.
const STREAM_PLAN: u64 = 0x504C_414E; // "PLAN"
const STREAM_GEN: u64 = 0x4745_4E45; // "GENE"
const STREAM_LLM: u64 = 0x4C4C_4D47; // "LLMG"
const STREAM_SPEC: u64 = 0x5350_4543; // "SPEC"

impl CorpusBuilder {
    /// Creates a builder with the paper-shaped default mix.
    pub fn new(seed: u64) -> CorpusBuilder {
        CorpusBuilder {
            seed,
            scraped: 2400,
            mix: PoolMix::default(),
            with_llm_generation: true,
            spec_samples: 0,
            threads: 0,
        }
    }

    /// Sets the number of scraped files (paper scale / 1000 by default).
    pub fn scraped_files(mut self, n: usize) -> CorpusBuilder {
        self.scraped = n;
        self
    }

    /// Overrides the pool mix.
    pub fn mix(mut self, mix: PoolMix) -> CorpusBuilder {
        self.mix = mix;
        self
    }

    /// Enables/disables the Fig. 2 pseudo-LLM generation stage.
    pub fn llm_generation(mut self, on: bool) -> CorpusBuilder {
        self.with_llm_generation = on;
        self
    }

    /// Mixes in `n` correct-by-construction spec pairs (truth-table / FSM
    /// transition-table descriptions rendered from the golden design by
    /// the simulator; see [`crate::spec`]). Off by default — the spec
    /// stream is purely additive, so the scraped and LLM-generated pool
    /// bytes are unchanged at any value of `n`.
    pub fn spec_samples(mut self, n: usize) -> CorpusBuilder {
        self.spec_samples = n;
        self
    }

    /// Sets the worker-thread count for sample generation (`0` = auto).
    /// The pool is identical at any value.
    pub fn threads(mut self, threads: usize) -> CorpusBuilder {
        self.threads = threads;
        self
    }

    /// Builds the pool.
    ///
    /// Three phases keep the output independent of the thread count:
    /// a sequential *plan* pass (category, family, donor choices — the
    /// only cross-sample state is the donor bank), a parallel *generate*
    /// pass where sample `i` draws from its own RNG stream
    /// `stream_seed(seed, i)`, and a sequential *fill* pass that copies
    /// duplicate sources from their (already generated) donors.
    pub fn build(&self) -> CorpusPool {
        let catalog = DesignFamily::catalog();
        let plan_master = stream_seed(self.seed, STREAM_PLAN);
        let gen_master = stream_seed(self.seed, STREAM_GEN);

        // Phase A: plan. Duplicates can only copy an earlier clean/sloppy
        // sample, so donor eligibility is the one sequential dependency.
        let mut plans: Vec<Plan> = Vec::with_capacity(self.scraped);
        let mut donors: Vec<usize> = Vec::new();
        for i in 0..self.scraped {
            let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(plan_master, i as u64));
            let family = rng.random_range(0..catalog.len());
            let roll: f64 = rng.random();
            let m = &self.mix;
            let plan = if roll < m.broken {
                Plan::Broken
            } else if roll < m.broken + m.duplicates && !donors.is_empty() {
                // duplicate an earlier sample, sometimes with cosmetic noise
                let donor = donors[rng.random_range(0..donors.len())];
                Plan::Duplicate { donor, prefix_comment: rng.random::<f64>() < 0.5 }
            } else if roll < m.broken + m.duplicates + m.syntax_errors {
                Plan::Syntax { family }
            } else if roll < m.broken + m.duplicates + m.syntax_errors + m.dependency_issues {
                Plan::Dependency { family }
            } else if roll
                < m.broken + m.duplicates + m.syntax_errors + m.dependency_issues + m.sloppy
            {
                donors.push(i);
                Plan::Sloppy { family }
            } else {
                donors.push(i);
                Plan::Clean { family }
            };
            plans.push(plan);
        }

        // Phase B: generate all non-duplicates, one isolated RNG stream
        // per sample index.
        let exec = ExecConfig::new().threads(self.threads);
        let indexed: Vec<(usize, Plan)> = plans.iter().copied().enumerate().collect();
        let catalog_ref = &catalog;
        let mut generated: Vec<Option<RawSample>> = par_map(&exec, indexed, |(i, plan)| {
            let id = i as u64;
            let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(gen_master, i as u64));
            match plan {
                Plan::Duplicate { .. } => None,
                Plan::Broken => Some(RawSample::new(
                    id,
                    defect::broken_file(&mut rng),
                    "",
                    Origin::Scraped,
                    TruthLabel::EmptyOrBinary,
                )),
                Plan::Syntax { family } => {
                    let style = StyleOptions::sampled(rng.random::<f64>() * 0.6, &mut rng);
                    let d = generate(&catalog_ref[family], &style, &mut rng);
                    Some(RawSample::new(
                        id,
                        defect::inject_syntax_error(&d.source, &mut rng),
                        d.description,
                        Origin::Scraped,
                        TruthLabel::SyntaxBroken,
                    ))
                }
                Plan::Dependency { family } => {
                    let style = StyleOptions::sampled(rng.random::<f64>() * 0.6, &mut rng);
                    let d = generate(&catalog_ref[family], &style, &mut rng);
                    Some(RawSample::new(
                        id,
                        defect::inject_dependency_issue(&d.source, &mut rng),
                        d.description,
                        Origin::Scraped,
                        TruthLabel::DependencyBroken,
                    ))
                }
                Plan::Sloppy { family } => {
                    let style = StyleOptions::sampled(0.5 + rng.random::<f64>() * 0.5, &mut rng);
                    let d = generate(&catalog_ref[family], &style, &mut rng);
                    let source = defect::degrade_text(&d.source, rng.random::<f64>(), &mut rng);
                    Some(RawSample::new(
                        id,
                        source,
                        d.description,
                        Origin::Scraped,
                        TruthLabel::Sloppy,
                    ))
                }
                Plan::Clean { family } => {
                    // "Clean" scraped files still carry mild style variation —
                    // textbook-perfect (rank 20) files are rare in the wild,
                    // which is what keeps the paper's Layer 1 tiny.
                    let style = StyleOptions::sampled(0.3 + rng.random::<f64>() * 0.45, &mut rng);
                    let d = generate(&catalog_ref[family], &style, &mut rng);
                    Some(RawSample::new(
                        id,
                        d.source,
                        d.description,
                        Origin::Scraped,
                        TruthLabel::Clean,
                    ))
                }
            }
        });

        // Phase C: fill duplicates from their donors (donors are never
        // themselves duplicates, so every donor slot is populated).
        for (i, plan) in plans.iter().enumerate() {
            if let Plan::Duplicate { donor, prefix_comment } = *plan {
                let donor_sample = generated[donor].as_ref().expect("donor was generated");
                let source = if prefix_comment {
                    format!("// copied file\n{}", donor_sample.source)
                } else {
                    donor_sample.source.clone()
                };
                let description = donor_sample.description.clone();
                generated[i] = Some(RawSample::new(
                    i as u64,
                    source,
                    description,
                    Origin::Scraped,
                    TruthLabel::Duplicate,
                ));
            }
        }
        let mut samples: Vec<RawSample> =
            generated.into_iter().map(|s| s.expect("every plan filled")).collect();

        let mut gen_funnel = llmgen::GenFunnel::default();
        if self.with_llm_generation {
            let mut llm_rng = ChaCha8Rng::seed_from_u64(stream_seed(self.seed, STREAM_LLM));
            let (responses, funnel) = llmgen::run_generation(&mut llm_rng, self.scraped as u64);
            gen_funnel = funnel;
            samples.extend(responses.into_iter().map(|r| r.sample));
        }

        // Optional additive stream: correct-by-construction spec pairs,
        // each verified against the simulator at generation time. Ids
        // continue after everything above; sample `i` draws from its own
        // stream so the fan-out is thread-count invariant like Phase B.
        if self.spec_samples > 0 {
            let spec_master = stream_seed(self.seed, STREAM_SPEC);
            let spec_catalog = DesignFamily::spec_catalog();
            let base_id = samples.iter().map(|s| s.id + 1).max().unwrap_or(0);
            let spec_catalog_ref = &spec_catalog;
            let specs: Vec<RawSample> = par_map(&exec, (0..self.spec_samples).collect(), |i| {
                let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(spec_master, i as u64));
                let family = &spec_catalog_ref[rng.random_range(0..spec_catalog_ref.len())];
                let style = StyleOptions::sampled(rng.random::<f64>() * 0.4, &mut rng);
                let d = generate(family, &style, &mut rng);
                RawSample::new(
                    base_id + i as u64,
                    d.source,
                    d.description,
                    Origin::SpecRendered,
                    TruthLabel::Clean,
                )
            });
            samples.extend(specs);
        }
        CorpusPool { samples, gen_funnel }
    }
}

/// The built pool plus generation statistics.
#[derive(Debug, Clone)]
pub struct CorpusPool {
    /// All raw samples (scraped + LLM-generated).
    pub samples: Vec<RawSample>,
    /// Fig. 2 funnel counts for the generation stage.
    pub gen_funnel: llmgen::GenFunnel,
}

impl CorpusPool {
    /// Count of samples with a given truth label.
    pub fn count(&self, truth: TruthLabel) -> usize {
        self.samples.iter().filter(|s| s.truth == truth).count()
    }

    /// Count of samples from a given origin.
    pub fn count_origin(&self, origin: Origin) -> usize {
        self.samples.iter().filter(|s| s.origin == origin).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_requested_scale() {
        let pool = CorpusBuilder::new(1).scraped_files(500).build();
        assert_eq!(pool.count_origin(Origin::Scraped), 500);
        assert!(pool.count_origin(Origin::LlmGenerated) > 400, "catalog × 10 temperatures");
    }

    #[test]
    fn pool_mix_roughly_matches_default() {
        let pool = CorpusBuilder::new(2).scraped_files(2000).llm_generation(false).build();
        let n = pool.samples.len() as f64;
        let frac = |t| pool.count(t) as f64 / n;
        assert!((frac(TruthLabel::EmptyOrBinary) - 0.25).abs() < 0.05);
        assert!((frac(TruthLabel::SyntaxBroken) - 0.16).abs() < 0.05);
        assert!((frac(TruthLabel::DependencyBroken) - 0.13).abs() < 0.05);
        // the clean remainder is 1 - 0.25 - 0.30 - 0.16 - 0.13 - 0.10 = 6%
        assert!(frac(TruthLabel::Clean) > 0.03, "clean frac {}", frac(TruthLabel::Clean));
        assert!(frac(TruthLabel::Sloppy) > 0.05);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = CorpusBuilder::new(7).scraped_files(100).build();
        let b = CorpusBuilder::new(7).scraped_files(100).build();
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CorpusBuilder::new(7).scraped_files(100).llm_generation(false).build();
        let b = CorpusBuilder::new(8).scraped_files(100).llm_generation(false).build();
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn ids_are_unique() {
        let pool = CorpusBuilder::new(9).scraped_files(300).build();
        let mut ids: Vec<u64> = pool.samples.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(n, ids.len());
    }

    #[test]
    fn spec_samples_are_additive_and_thread_invariant() {
        let base = CorpusBuilder::new(11).scraped_files(50).llm_generation(false).build();
        let with =
            CorpusBuilder::new(11).scraped_files(50).llm_generation(false).spec_samples(8).build();
        assert_eq!(
            &with.samples[..base.samples.len()],
            &base.samples[..],
            "the spec stream must not perturb the existing pool bytes"
        );
        assert_eq!(with.count_origin(Origin::SpecRendered), 8);
        for s in with.samples.iter().filter(|s| s.origin == Origin::SpecRendered) {
            assert!(s.description.contains('|'), "sample {} has no table", s.id);
            assert!(pyranet_verilog::check_source(&s.source).is_compilable());
            assert_eq!(s.truth, TruthLabel::Clean);
        }
        let t1 = CorpusBuilder::new(11)
            .scraped_files(50)
            .llm_generation(false)
            .spec_samples(8)
            .threads(1)
            .build();
        let t8 = CorpusBuilder::new(11)
            .scraped_files(50)
            .llm_generation(false)
            .spec_samples(8)
            .threads(8)
            .build();
        assert_eq!(t1.samples, t8.samples, "spec stream must be thread-count invariant");
    }

    #[test]
    fn duplicates_reference_earlier_content() {
        let pool = CorpusBuilder::new(10).scraped_files(1000).llm_generation(false).build();
        let dups = pool.count(TruthLabel::Duplicate);
        assert!(dups > 0);
    }
}
