//! The corpus pool builder — the "GitHub scrape" substitute.
//!
//! Builds a noisy pool whose composition mirrors the paper's funnel
//! (§III-A.5): most files are usable after curation, a large minority have
//! dependency issues, and the rest are duplicates, syntax-broken, or
//! empty/broken. At paper scale 2.4 M collected → 692,238 curated
//! (≈29% survive with ranks, of which 430,461 are Layer-6 dependency/zero-
//! rank material); the default mix reproduces those proportions.

use crate::defect;
use crate::gen::generate;
use crate::llmgen;
use crate::sample::{Origin, RawSample, TruthLabel};
use crate::style::StyleOptions;
use crate::DesignFamily;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Mix proportions for the scraped pool (must sum to ≤ 1; the remainder is
/// clean).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolMix {
    /// Fraction of empty/broken/non-module files.
    pub broken: f64,
    /// Fraction of exact/near duplicates.
    pub duplicates: f64,
    /// Fraction with syntax errors.
    pub syntax_errors: f64,
    /// Fraction with dependency issues.
    pub dependency_issues: f64,
    /// Fraction of style-degraded (but compilable) files.
    pub sloppy: f64,
}

impl Default for PoolMix {
    /// The paper-shaped default: scaled from 2.4 M → 692 k survivors with a
    /// heavy Layer-6 (dependency) band.
    fn default() -> Self {
        PoolMix {
            broken: 0.25,
            duplicates: 0.30,
            syntax_errors: 0.16,
            dependency_issues: 0.13,
            sloppy: 0.10,
        }
    }
}

/// Builder for a synthetic corpus pool.
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    seed: u64,
    scraped: usize,
    mix: PoolMix,
    with_llm_generation: bool,
}

impl CorpusBuilder {
    /// Creates a builder with the paper-shaped default mix.
    pub fn new(seed: u64) -> CorpusBuilder {
        CorpusBuilder { seed, scraped: 2400, mix: PoolMix::default(), with_llm_generation: true }
    }

    /// Sets the number of scraped files (paper scale / 1000 by default).
    pub fn scraped_files(mut self, n: usize) -> CorpusBuilder {
        self.scraped = n;
        self
    }

    /// Overrides the pool mix.
    pub fn mix(mut self, mix: PoolMix) -> CorpusBuilder {
        self.mix = mix;
        self
    }

    /// Enables/disables the Fig. 2 pseudo-LLM generation stage.
    pub fn llm_generation(mut self, on: bool) -> CorpusBuilder {
        self.with_llm_generation = on;
        self
    }

    /// Builds the pool.
    pub fn build(&self) -> CorpusPool {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let catalog = DesignFamily::catalog();
        let mut samples: Vec<RawSample> = Vec::with_capacity(self.scraped + 1024);
        let mut id = 0u64;
        // Pre-generate a bank of clean designs to duplicate from.
        let mut dup_bank: Vec<RawSample> = Vec::new();
        for _ in 0..self.scraped {
            let family = &catalog[rng.random_range(0..catalog.len())];
            let roll: f64 = rng.random();
            let m = &self.mix;
            let sample = if roll < m.broken {
                RawSample::new(id, defect::broken_file(&mut rng), "", Origin::Scraped, TruthLabel::EmptyOrBinary)
            } else if roll < m.broken + m.duplicates && !dup_bank.is_empty() {
                // duplicate an earlier sample, sometimes with cosmetic noise
                let donor = &dup_bank[rng.random_range(0..dup_bank.len())];
                let source = if rng.random::<f64>() < 0.5 {
                    format!("// copied file\n{}", donor.source)
                } else {
                    donor.source.clone()
                };
                RawSample::new(id, source, donor.description.clone(), Origin::Scraped, TruthLabel::Duplicate)
            } else if roll < m.broken + m.duplicates + m.syntax_errors {
                let style = StyleOptions::sampled(rng.random::<f64>() * 0.6, &mut rng);
                let d = generate(family, &style, &mut rng);
                RawSample::new(
                    id,
                    defect::inject_syntax_error(&d.source, &mut rng),
                    d.description,
                    Origin::Scraped,
                    TruthLabel::SyntaxBroken,
                )
            } else if roll < m.broken + m.duplicates + m.syntax_errors + m.dependency_issues {
                let style = StyleOptions::sampled(rng.random::<f64>() * 0.6, &mut rng);
                let d = generate(family, &style, &mut rng);
                RawSample::new(
                    id,
                    defect::inject_dependency_issue(&d.source, &mut rng),
                    d.description,
                    Origin::Scraped,
                    TruthLabel::DependencyBroken,
                )
            } else if roll
                < m.broken + m.duplicates + m.syntax_errors + m.dependency_issues + m.sloppy
            {
                let style = StyleOptions::sampled(0.5 + rng.random::<f64>() * 0.5, &mut rng);
                let d = generate(family, &style, &mut rng);
                let source = defect::degrade_text(&d.source, rng.random::<f64>(), &mut rng);
                let s = RawSample::new(id, source, d.description, Origin::Scraped, TruthLabel::Sloppy);
                dup_bank.push(s.clone());
                s
            } else {
                // "Clean" scraped files still carry mild style variation —
                // textbook-perfect (rank 20) files are rare in the wild,
                // which is what keeps the paper's Layer 1 tiny.
                let style = StyleOptions::sampled(0.3 + rng.random::<f64>() * 0.45, &mut rng);
                let d = generate(family, &style, &mut rng);
                let s = RawSample::new(id, d.source, d.description, Origin::Scraped, TruthLabel::Clean);
                dup_bank.push(s.clone());
                s
            };
            samples.push(sample);
            id += 1;
        }
        let mut gen_funnel = llmgen::GenFunnel::default();
        if self.with_llm_generation {
            let (responses, funnel) = llmgen::run_generation(&mut rng, id);
            gen_funnel = funnel;
            samples.extend(responses.into_iter().map(|r| r.sample));
        }
        CorpusPool { samples, gen_funnel }
    }
}

/// The built pool plus generation statistics.
#[derive(Debug, Clone)]
pub struct CorpusPool {
    /// All raw samples (scraped + LLM-generated).
    pub samples: Vec<RawSample>,
    /// Fig. 2 funnel counts for the generation stage.
    pub gen_funnel: llmgen::GenFunnel,
}

impl CorpusPool {
    /// Count of samples with a given truth label.
    pub fn count(&self, truth: TruthLabel) -> usize {
        self.samples.iter().filter(|s| s.truth == truth).count()
    }

    /// Count of samples from a given origin.
    pub fn count_origin(&self, origin: Origin) -> usize {
        self.samples.iter().filter(|s| s.origin == origin).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_requested_scale() {
        let pool = CorpusBuilder::new(1).scraped_files(500).build();
        assert_eq!(pool.count_origin(Origin::Scraped), 500);
        assert!(pool.count_origin(Origin::LlmGenerated) > 400, "catalog × 10 temperatures");
    }

    #[test]
    fn pool_mix_roughly_matches_default() {
        let pool = CorpusBuilder::new(2).scraped_files(2000).llm_generation(false).build();
        let n = pool.samples.len() as f64;
        let frac = |t| pool.count(t) as f64 / n;
        assert!((frac(TruthLabel::EmptyOrBinary) - 0.25).abs() < 0.05);
        assert!((frac(TruthLabel::SyntaxBroken) - 0.16).abs() < 0.05);
        assert!((frac(TruthLabel::DependencyBroken) - 0.13).abs() < 0.05);
        // the clean remainder is 1 - 0.25 - 0.30 - 0.16 - 0.13 - 0.10 = 6%
        assert!(frac(TruthLabel::Clean) > 0.03, "clean frac {}", frac(TruthLabel::Clean));
        assert!(frac(TruthLabel::Sloppy) > 0.05);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = CorpusBuilder::new(7).scraped_files(100).build();
        let b = CorpusBuilder::new(7).scraped_files(100).build();
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CorpusBuilder::new(7).scraped_files(100).llm_generation(false).build();
        let b = CorpusBuilder::new(8).scraped_files(100).llm_generation(false).build();
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn ids_are_unique() {
        let pool = CorpusBuilder::new(9).scraped_files(300).build();
        let mut ids: Vec<u64> = pool.samples.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(n, ids.len());
    }

    #[test]
    fn duplicates_reference_earlier_content() {
        let pool = CorpusBuilder::new(10).scraped_files(1000).llm_generation(false).build();
        let dups = pool.count(TruthLabel::Duplicate);
        assert!(dups > 0);
    }
}
