//! Defect injection — turning clean designs into the corpus's broken tiers.
//!
//! The paper's pipeline must reject empty/broken files, classify syntax
//! errors vs dependency issues, and down-rank sloppy style. To exercise all
//! of those paths, the corpus builder injects three defect classes:
//!
//! * [`inject_syntax_error`] — guaranteed to make the file fail the
//!   Icarus-substitute check;
//! * [`inject_dependency_issue`] — instantiates an undefined module, which
//!   compiles "with dependency issues" (Layer 6 material);
//! * [`degrade_text`] — textual style rot (tabs, trailing whitespace,
//!   overlong lines, stripped comments) that lowers the rank but keeps the
//!   file compilable.

use rand::Rng;

/// Syntax-breaking mutations. Each is textual and guaranteed to produce a
/// parse failure for sources emitted by our generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntaxDefect {
    /// Delete the final `endmodule`.
    DropEndmodule,
    /// Remove the first semicolon.
    DropSemicolon,
    /// Unbalance a parenthesis.
    DropParen,
    /// Truncate the file mid-token.
    Truncate,
    /// Replace `assign` with a misspelling.
    MisspellKeyword,
}

impl SyntaxDefect {
    /// All variants, for sampling.
    pub const ALL: [SyntaxDefect; 5] = [
        SyntaxDefect::DropEndmodule,
        SyntaxDefect::DropSemicolon,
        SyntaxDefect::DropParen,
        SyntaxDefect::Truncate,
        SyntaxDefect::MisspellKeyword,
    ];
}

/// Applies a random syntax defect.
pub fn inject_syntax_error<R: Rng>(source: &str, rng: &mut R) -> String {
    let defect = SyntaxDefect::ALL[rng.random_range(0..SyntaxDefect::ALL.len())];
    apply_syntax_defect(source, defect)
}

/// Applies a specific syntax defect.
///
/// Mutations target the code region (at or after the first `module`
/// keyword) so a defect never lands harmlessly inside a header comment.
pub fn apply_syntax_defect(source: &str, defect: SyntaxDefect) -> String {
    let code_start = source.find("module").unwrap_or(0);
    let find_after = |needle: char| source[code_start..].find(needle).map(|p| p + code_start);
    match defect {
        SyntaxDefect::DropEndmodule => match source.rfind("endmodule") {
            Some(pos) => format!("{}{}", &source[..pos], &source[pos + "endmodule".len()..]),
            None => format!("{source}\n(("),
        },
        SyntaxDefect::DropSemicolon => match find_after(';') {
            Some(pos) => format!("{}{}", &source[..pos], &source[pos + 1..]),
            None => format!("{source}\n(("),
        },
        SyntaxDefect::DropParen => match find_after('(') {
            Some(pos) => format!("{}{}", &source[..pos], &source[pos + 1..]),
            None => format!("{source}\n)"),
        },
        SyntaxDefect::Truncate => {
            let keep = source.len() * 2 / 3;
            let mut keep = keep.max(10).min(source.len());
            while keep > 0 && !source.is_char_boundary(keep) {
                keep -= 1;
            }
            source[..keep].to_owned()
        }
        SyntaxDefect::MisspellKeyword => {
            if source.contains("assign") {
                source.replacen("assign", "asign", 1)
            } else if source.contains("always") {
                source.replacen("always", "alway", 1)
            } else {
                format!("{source}\nmodule ;")
            }
        }
    }
}

/// Appends an instantiation of a module that does not exist in the file,
/// producing the paper's "dependency issue" class.
pub fn inject_dependency_issue<R: Rng>(source: &str, rng: &mut R) -> String {
    let phantoms = ["clk_gate_cell", "vendor_sram_macro", "pll_wrapper", "pad_buffer", "scan_mux"];
    let phantom = phantoms[rng.random_range(0..phantoms.len())];
    match source.rfind("endmodule") {
        Some(pos) => {
            let inst = format!("  {phantom} u_{phantom}(.a(1'b0));\n");
            format!("{}{}{}", &source[..pos], inst, &source[pos..])
        }
        None => source.to_owned(),
    }
}

/// Textual style degradation that keeps the file compilable.
pub fn degrade_text<R: Rng>(source: &str, severity: f64, rng: &mut R) -> String {
    let severity = severity.clamp(0.0, 1.0);
    let mut out = String::with_capacity(source.len() + 64);
    for line in source.lines() {
        let mut line = line.to_owned();
        // strip comments
        if severity > 0.3 && line.trim_start().starts_with("//") {
            continue;
        }
        if rng.random::<f64>() < severity * 0.5 {
            if let Some(pos) = line.find("//") {
                line.truncate(pos);
            }
        }
        // tabs for indent
        if rng.random::<f64>() < severity * 0.4 && line.starts_with("  ") {
            line = format!("\t{}", &line[2..]);
        }
        // trailing whitespace
        if rng.random::<f64>() < severity * 0.4 {
            line.push_str("   ");
        }
        out.push_str(&line);
        out.push('\n');
    }
    // pad one line beyond 100 chars
    if rng.random::<f64>() < severity * 0.6 {
        let pad = " ".repeat(40);
        if let Some(pos) = out.find(";\n") {
            out.insert_str(pos + 1, &format!(" //{pad}{pad}{pad}"));
        }
    }
    out
}

/// Produces an "empty or broken" file body (paper's first filter class).
pub fn broken_file<R: Rng>(rng: &mut R) -> String {
    match rng.random_range(0..4) {
        0 => String::new(),
        1 => "   \n\t \n".to_owned(),
        // binary-ish garbage: invalid leading bytes for any Verilog token
        2 => "\u{1}\u{2}\u{3}£¥§ binary blob \u{7f}".to_owned(),
        // text, but with no module declaration at all
        _ => "// just a comment file\n// nothing else here\n".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_verilog::{check_source, SyntaxVerdict};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const CLEAN: &str = "// adder\nmodule m(input a, input b, output s, output c);\n  \
                         assign s = a ^ b;\n  assign c = a & b;\nendmodule\n";

    #[test]
    fn every_syntax_defect_breaks_the_parse() {
        for defect in SyntaxDefect::ALL {
            let broken = apply_syntax_defect(CLEAN, defect);
            let v = check_source(&broken);
            assert!(
                matches!(v, SyntaxVerdict::SyntaxError { .. }),
                "{defect:?} produced {v:?}:\n{broken}"
            );
        }
    }

    #[test]
    fn dependency_issue_is_dependency_not_syntax() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let broken = inject_dependency_issue(CLEAN, &mut rng);
        assert!(matches!(check_source(&broken), SyntaxVerdict::DependencyIssue { .. }));
    }

    #[test]
    fn degraded_text_still_compiles() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..20 {
            let bad = degrade_text(CLEAN, 1.0, &mut rng);
            assert!(check_source(&bad).is_compilable(), "{bad}");
        }
    }

    #[test]
    fn degraded_text_lints_worse() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let bad = degrade_text(CLEAN, 1.0, &mut rng);
        let clean_m = pyranet_verilog::parse_module(CLEAN).unwrap();
        let clean_p = pyranet_verilog::lint::lint_module(&clean_m, CLEAN).penalty();
        let bad_m = pyranet_verilog::parse_module(&bad).unwrap();
        let bad_p = pyranet_verilog::lint::lint_module(&bad_m, &bad).penalty();
        assert!(bad_p > clean_p, "bad={bad_p} clean={clean_p}\n{bad}");
    }

    #[test]
    fn broken_files_fail_early_filters() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..12 {
            let b = broken_file(&mut rng);
            assert!(!check_source(&b).is_compilable(), "{b:?}");
        }
    }
}
