//! Defect injection — turning clean designs into the corpus's broken tiers.
//!
//! The paper's pipeline must reject empty/broken files, classify syntax
//! errors vs dependency issues, and down-rank sloppy style. To exercise all
//! of those paths, the corpus builder injects three defect classes:
//!
//! * [`inject_syntax_error`] — guaranteed to make the file fail the
//!   Icarus-substitute check;
//! * [`inject_dependency_issue`] — instantiates an undefined module, which
//!   compiles "with dependency issues" (Layer 6 material);
//! * [`degrade_text`] — textual style rot (tabs, trailing whitespace,
//!   overlong lines, stripped comments) that lowers the rank but keeps the
//!   file compilable.

use rand::Rng;

/// Outcome of a defect injection: the resulting source plus whether the
/// injector actually changed anything.
///
/// Every injector has a `_checked` variant returning this, so callers that
/// need a guaranteed mutation (the repair recipe pairs broken sources with
/// their clean originals and must never emit `broken == clean`) can verify
/// instead of assuming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// The (possibly) mutated source text.
    pub source: String,
    /// True when `source` differs from the input.
    pub mutated: bool,
}

impl Injection {
    fn of(original: &str, source: String) -> Injection {
        let mutated = source != original;
        Injection { source, mutated }
    }
}

/// Syntax-breaking mutations. Each is textual and guaranteed to produce a
/// parse failure for sources emitted by our generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntaxDefect {
    /// Delete the final `endmodule`.
    DropEndmodule,
    /// Remove the first semicolon.
    DropSemicolon,
    /// Unbalance a parenthesis.
    DropParen,
    /// Truncate the file mid-token.
    Truncate,
    /// Replace `assign` with a misspelling.
    MisspellKeyword,
}

impl SyntaxDefect {
    /// All variants, for sampling.
    pub const ALL: [SyntaxDefect; 5] = [
        SyntaxDefect::DropEndmodule,
        SyntaxDefect::DropSemicolon,
        SyntaxDefect::DropParen,
        SyntaxDefect::Truncate,
        SyntaxDefect::MisspellKeyword,
    ];
}

/// Applies a random syntax defect.
pub fn inject_syntax_error<R: Rng>(source: &str, rng: &mut R) -> String {
    inject_syntax_error_checked(source, rng).source
}

/// Applies a random syntax defect, reporting whether the source changed.
pub fn inject_syntax_error_checked<R: Rng>(source: &str, rng: &mut R) -> Injection {
    let defect = SyntaxDefect::ALL[rng.random_range(0..SyntaxDefect::ALL.len())];
    apply_syntax_defect_checked(source, defect)
}

/// Applies a specific syntax defect.
///
/// Mutations target the code region (at or after the first `module`
/// keyword) so a defect never lands harmlessly inside a header comment.
pub fn apply_syntax_defect(source: &str, defect: SyntaxDefect) -> String {
    apply_syntax_defect_checked(source, defect).source
}

/// Applies a specific syntax defect, reporting whether the source changed.
///
/// Every arm has a fallback mutation when its target construct is absent,
/// so the only unmutated output is truncating an already-empty source.
pub fn apply_syntax_defect_checked(source: &str, defect: SyntaxDefect) -> Injection {
    let code_start = source.find("module").unwrap_or(0);
    let find_after = |needle: char| source[code_start..].find(needle).map(|p| p + code_start);
    let out = match defect {
        // rfind is scoped to the code region: an unscoped search could land
        // on the word `endmodule` inside a comment, mangling prose while
        // leaving the code parseable.
        SyntaxDefect::DropEndmodule => {
            match source[code_start..].rfind("endmodule").map(|p| p + code_start) {
                Some(pos) => format!("{}{}", &source[..pos], &source[pos + "endmodule".len()..]),
                None => format!("{source}\n(("),
            }
        }
        SyntaxDefect::DropSemicolon => match find_after(';') {
            Some(pos) => format!("{}{}", &source[..pos], &source[pos + 1..]),
            None => format!("{source}\n(("),
        },
        SyntaxDefect::DropParen => match find_after('(') {
            Some(pos) => format!("{}{}", &source[..pos], &source[pos + 1..]),
            None => format!("{source}\n)"),
        },
        SyntaxDefect::Truncate => {
            // Cap at len-1 so short sources still shrink: keeping >= 10
            // chars of a <= 10-char file used to return it unchanged.
            let keep = source.len() * 2 / 3;
            let mut keep = keep.max(10).min(source.len().saturating_sub(1));
            while keep > 0 && !source.is_char_boundary(keep) {
                keep -= 1;
            }
            let mut out = source[..keep].to_owned();
            // In a multi-module file the 2/3 point can land exactly on a
            // module boundary, leaving a parseable prefix (at worst a
            // dependency issue, not a syntax error). Re-cut just before the
            // prefix's final `endmodule` so the last module is left open.
            if out.trim_end().ends_with("endmodule") {
                if let Some(pos) = out.rfind("endmodule") {
                    out.truncate(pos);
                }
            }
            out
        }
        SyntaxDefect::MisspellKeyword => {
            if source.contains("assign") {
                source.replacen("assign", "asign", 1)
            } else if source.contains("always") {
                source.replacen("always", "alway", 1)
            } else {
                format!("{source}\nmodule ;")
            }
        }
    };
    Injection::of(source, out)
}

/// Appends an instantiation of a module that does not exist in the file,
/// producing the paper's "dependency issue" class.
pub fn inject_dependency_issue<R: Rng>(source: &str, rng: &mut R) -> String {
    inject_dependency_issue_checked(source, rng).source
}

/// Like [`inject_dependency_issue`], reporting whether the source changed.
///
/// When the source has no `endmodule` to anchor the instantiation, a
/// self-contained wrapper module instantiating the phantom is appended
/// instead of silently returning the input unchanged — the output is
/// always mutated, and for otherwise-parseable sources still lands in the
/// dependency-issue class.
pub fn inject_dependency_issue_checked<R: Rng>(source: &str, rng: &mut R) -> Injection {
    let phantoms = ["clk_gate_cell", "vendor_sram_macro", "pll_wrapper", "pad_buffer", "scan_mux"];
    let phantom = phantoms[rng.random_range(0..phantoms.len())];
    let out = match source.rfind("endmodule") {
        Some(pos) => {
            let inst = format!("  {phantom} u_{phantom}(.a(1'b0));\n");
            format!("{}{}{}", &source[..pos], inst, &source[pos..])
        }
        None => format!(
            "{source}\nmodule phantom_wrapper(input a);\n  {phantom} u_{phantom}(.a(a));\nendmodule\n"
        ),
    };
    Injection::of(source, out)
}

/// Textual style degradation that keeps the file compilable.
pub fn degrade_text<R: Rng>(source: &str, severity: f64, rng: &mut R) -> String {
    let severity = severity.clamp(0.0, 1.0);
    let mut out = String::with_capacity(source.len() + 64);
    for line in source.lines() {
        let mut line = line.to_owned();
        // strip comments
        if severity > 0.3 && line.trim_start().starts_with("//") {
            continue;
        }
        if rng.random::<f64>() < severity * 0.5 {
            if let Some(pos) = line.find("//") {
                line.truncate(pos);
            }
        }
        // tabs for indent
        if rng.random::<f64>() < severity * 0.4 && line.starts_with("  ") {
            line = format!("\t{}", &line[2..]);
        }
        // trailing whitespace
        if rng.random::<f64>() < severity * 0.4 {
            line.push_str("   ");
        }
        out.push_str(&line);
        out.push('\n');
    }
    // pad one line beyond 100 chars
    if rng.random::<f64>() < severity * 0.6 {
        let pad = " ".repeat(40);
        if let Some(pos) = out.find(";\n") {
            out.insert_str(pos + 1, &format!(" //{pad}{pad}{pad}"));
        }
    }
    out
}

/// Like [`degrade_text`], reporting whether the source changed.
///
/// Unlike the syntax/dependency injectors, style rot is probabilistic: at
/// low severity (or on sources that are already rotten) the roll can leave
/// the text byte-identical, which `mutated: false` makes visible.
pub fn degrade_text_checked<R: Rng>(source: &str, severity: f64, rng: &mut R) -> Injection {
    let out = degrade_text(source, severity, rng);
    Injection::of(source, out)
}

/// Produces an "empty or broken" file body (paper's first filter class).
pub fn broken_file<R: Rng>(rng: &mut R) -> String {
    match rng.random_range(0..4) {
        0 => String::new(),
        1 => "   \n\t \n".to_owned(),
        // binary-ish garbage: invalid leading bytes for any Verilog token
        2 => "\u{1}\u{2}\u{3}£¥§ binary blob \u{7f}".to_owned(),
        // text, but with no module declaration at all
        _ => "// just a comment file\n// nothing else here\n".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_verilog::{check_source, SyntaxVerdict};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const CLEAN: &str = "// adder\nmodule m(input a, input b, output s, output c);\n  \
                         assign s = a ^ b;\n  assign c = a & b;\nendmodule\n";

    #[test]
    fn every_syntax_defect_breaks_the_parse() {
        for defect in SyntaxDefect::ALL {
            let broken = apply_syntax_defect(CLEAN, defect);
            let v = check_source(&broken);
            assert!(
                matches!(v, SyntaxVerdict::SyntaxError { .. }),
                "{defect:?} produced {v:?}:\n{broken}"
            );
        }
    }

    #[test]
    fn dependency_issue_is_dependency_not_syntax() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let broken = inject_dependency_issue(CLEAN, &mut rng);
        assert!(matches!(check_source(&broken), SyntaxVerdict::DependencyIssue { .. }));
    }

    #[test]
    fn degraded_text_still_compiles() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..20 {
            let bad = degrade_text(CLEAN, 1.0, &mut rng);
            assert!(check_source(&bad).is_compilable(), "{bad}");
        }
    }

    #[test]
    fn degraded_text_lints_worse() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let bad = degrade_text(CLEAN, 1.0, &mut rng);
        let clean_m = pyranet_verilog::parse_module(CLEAN).unwrap();
        let clean_p = pyranet_verilog::lint::lint_module(&clean_m, CLEAN).penalty();
        let bad_m = pyranet_verilog::parse_module(&bad).unwrap();
        let bad_p = pyranet_verilog::lint::lint_module(&bad_m, &bad).penalty();
        assert!(bad_p > clean_p, "bad={bad_p} clean={clean_p}\n{bad}");
    }

    #[test]
    fn truncate_mutates_short_sources() {
        // <= 10 chars: the old `keep.max(10)` kept the whole file, so the
        // "defect" parsed exactly like the original.
        for src in ["module m;", "module", "ab"] {
            let inj = apply_syntax_defect_checked(src, SyntaxDefect::Truncate);
            assert!(inj.mutated, "{src:?} came back unchanged");
            assert!(inj.source.len() < src.len());
        }
        // Empty input is the one unmutable case, and it must say so.
        let inj = apply_syntax_defect_checked("", SyntaxDefect::Truncate);
        assert!(!inj.mutated);
    }

    #[test]
    fn truncate_breaks_multi_module_files_at_any_boundary() {
        // Sweep the 2/3 cut point across a module boundary: without the
        // re-cut, a cut landing exactly after the first `endmodule` left a
        // parseable prefix (dependency issue at worst, not a syntax error).
        let m1 = "module a(output y);\n  assign y = 1;\nendmodule\n";
        for pad in 0..40 {
            let src =
                format!("{m1}{}module b(output z);\n  assign z = 0;\nendmodule\n", " ".repeat(pad));
            let inj = apply_syntax_defect_checked(&src, SyntaxDefect::Truncate);
            assert!(inj.mutated, "pad={pad} came back unchanged");
            let v = check_source(&inj.source);
            assert!(
                matches!(v, SyntaxVerdict::SyntaxError { .. }),
                "pad={pad} produced {v:?}:\n{}",
                inj.source
            );
        }
    }

    #[test]
    fn drop_endmodule_ignores_header_comment_occurrences() {
        // The only `endmodule` is inside the header comment. The old
        // unscoped rfind deleted it from the comment — a parse no-op — where
        // the scoped version falls back to a guaranteed-breaking mutation.
        let src = "// endmodule omitted below on purpose\nmodule m(input a, output y);\n  assign y = a;\n";
        let inj = apply_syntax_defect_checked(src, SyntaxDefect::DropEndmodule);
        assert!(inj.mutated);
        assert!(
            inj.source.contains("// endmodule omitted below on purpose"),
            "comment must survive untouched:\n{}",
            inj.source
        );
        assert!(matches!(check_source(&inj.source), SyntaxVerdict::SyntaxError { .. }));
    }

    #[test]
    fn drop_endmodule_still_removes_the_real_keyword() {
        let inj = apply_syntax_defect_checked(CLEAN, SyntaxDefect::DropEndmodule);
        assert!(inj.mutated);
        assert!(!inj.source.contains("endmodule"));
        assert!(matches!(check_source(&inj.source), SyntaxVerdict::SyntaxError { .. }));
    }

    #[test]
    fn dependency_injection_never_returns_input_unchanged() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        // No `endmodule` anywhere: the old code silently returned the input.
        for src in ["// comment only\n", "module m(input a);\n  assign y = a;\n", ""] {
            let inj = inject_dependency_issue_checked(src, &mut rng);
            assert!(inj.mutated, "{src:?} came back unchanged");
            assert_ne!(inj.source, src);
        }
        // The fallback wrapper keeps parseable files in the dependency class.
        let inj = inject_dependency_issue_checked("// empty design file\n", &mut rng);
        assert!(matches!(check_source(&inj.source), SyntaxVerdict::DependencyIssue { .. }));
    }

    #[test]
    fn checked_injectors_agree_with_plain_variants() {
        let mut a = ChaCha8Rng::seed_from_u64(10);
        let mut b = ChaCha8Rng::seed_from_u64(10);
        assert_eq!(
            inject_syntax_error(CLEAN, &mut a),
            inject_syntax_error_checked(CLEAN, &mut b).source
        );
        assert_eq!(
            inject_dependency_issue(CLEAN, &mut a),
            inject_dependency_issue_checked(CLEAN, &mut b).source
        );
        assert_eq!(
            degrade_text(CLEAN, 0.7, &mut a),
            degrade_text_checked(CLEAN, 0.7, &mut b).source
        );
    }

    #[test]
    fn broken_files_fail_early_filters() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..12 {
            let b = broken_file(&mut rng);
            assert!(!check_source(&b).is_compilable(), "{b:?}");
        }
    }
}
