//! The circuit families the corpus can generate.
//!
//! Each family is a parameterised design with a known golden behaviour;
//! families double as VerilogEval-substitute problem specs in
//! `pyranet-eval`.

use serde::{Deserialize, Serialize};

/// Circuit category, mirroring the paper's keyword database split into
/// combinational and sequential circuits (§III-A.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Purely combinational.
    Combinational,
    /// Clocked.
    Sequential,
}

/// A fully-parameterised design family instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignFamily {
    /// 1-bit half adder.
    HalfAdder,
    /// 1-bit full adder.
    FullAdder,
    /// Ripple-carry adder built from full-adder instances.
    RippleCarryAdder {
        /// Operand width (2–8).
        width: u32,
    },
    /// Behavioural adder (`assign {c,s} = a + b + cin`).
    BehavioralAdder {
        /// Operand width (2–16).
        width: u32,
    },
    /// Adder/subtractor with a mode input.
    AddSub {
        /// Operand width.
        width: u32,
    },
    /// Combinational multiplier.
    Multiplier {
        /// Operand width (2–8).
        width: u32,
    },
    /// Unsigned comparator producing lt/eq/gt.
    Comparator {
        /// Operand width.
        width: u32,
    },
    /// 2^sel-to-1 multiplexer.
    Mux {
        /// Select width (1–3), i.e. 2/4/8 inputs.
        sel_width: u32,
        /// Data width per input.
        width: u32,
    },
    /// Binary decoder with enable.
    Decoder {
        /// Input width (1–4).
        width: u32,
    },
    /// Priority encoder.
    PriorityEncoder {
        /// Output width; input has 2^width lines (1–4).
        width: u32,
    },
    /// Even/odd parity generator.
    Parity {
        /// Input width.
        width: u32,
        /// True for even parity.
        even: bool,
    },
    /// ALU over two operands with a small op set.
    Alu {
        /// Operand width.
        width: u32,
    },
    /// Synchronous up counter with enable and reset.
    Counter {
        /// Counter width.
        width: u32,
    },
    /// Up/down counter.
    UpDownCounter {
        /// Counter width.
        width: u32,
    },
    /// Modulo-N counter with terminal-count output.
    ModCounter {
        /// Modulus (2–200).
        modulus: u32,
    },
    /// D flip-flop with synchronous enable and async reset.
    Dff,
    /// Shift register (serial-in, parallel-out).
    ShiftRegister {
        /// Depth in bits.
        width: u32,
    },
    /// Linear-feedback shift register (maximal-ish taps for small widths).
    Lfsr {
        /// Register width (3–8).
        width: u32,
    },
    /// Rising-edge detector.
    EdgeDetector,
    /// Gray-code counter.
    GrayCounter {
        /// Width.
        width: u32,
    },
    /// Binary→Gray converter (combinational).
    BinToGray {
        /// Width.
        width: u32,
    },
    /// Sequence detector FSM (detects a fixed bit pattern, overlapping).
    SequenceDetector {
        /// The pattern bits, MSB first (length 3–5).
        pattern: Vec<bool>,
    },
    /// Single-port synchronous RAM.
    Ram {
        /// Address width (2–5).
        addr_width: u32,
        /// Data width.
        data_width: u32,
    },
    /// Register file with one write and one read port.
    RegFile {
        /// Address width (2–4).
        addr_width: u32,
        /// Data width.
        data_width: u32,
    },
    /// Combinational barrel (rotate-left) shifter.
    BarrelShifter {
        /// Data width (must be a power of two, 4–32).
        width: u32,
    },
    /// Johnson (twisted-ring) counter.
    JohnsonCounter {
        /// Register width (2–8).
        width: u32,
    },
    /// One-hot ring counter.
    RingCounter {
        /// Register width (2–8).
        width: u32,
    },
    /// Two-digit BCD counter with carry out.
    BcdCounter,
    /// BCD to seven-segment decoder.
    SevenSeg,
    /// Synchronous FIFO with full/empty flags.
    Fifo {
        /// Address width (2–4); depth is 2^addr_width.
        addr_width: u32,
        /// Data width.
        data_width: u32,
    },
    /// Saturating up/down counter.
    SaturatingCounter {
        /// Counter width.
        width: u32,
    },
    /// Three-input majority voter.
    Majority,
    /// Correct-by-construction truth-table spec pair: the golden code of
    /// `base` (a small combinational family) paired with a description that
    /// is its full truth table, rendered *from* the elaborated design by
    /// the simulator and re-verified against it at generation time.
    TruthTable {
        /// Underlying combinational family (small total input width).
        base: Box<DesignFamily>,
    },
    /// Correct-by-construction FSM transition-table spec: a sequence
    /// detector paired with a description tabulating, for every input bit
    /// string of the pattern's length, the hit outputs the golden design
    /// produces from reset — again rendered by, and re-verified against,
    /// the simulator.
    FsmTable {
        /// Pattern of the underlying sequence detector.
        pattern: Vec<bool>,
    },
}

impl DesignFamily {
    /// Category of the family.
    pub fn category(&self) -> Category {
        use DesignFamily::*;
        match self {
            HalfAdder
            | FullAdder
            | RippleCarryAdder { .. }
            | BehavioralAdder { .. }
            | AddSub { .. }
            | Multiplier { .. }
            | Comparator { .. }
            | Mux { .. }
            | Decoder { .. }
            | PriorityEncoder { .. }
            | Parity { .. }
            | Alu { .. }
            | BinToGray { .. } => Category::Combinational,
            BarrelShifter { .. } | SevenSeg | Majority => Category::Combinational,
            Counter { .. }
            | UpDownCounter { .. }
            | ModCounter { .. }
            | Dff
            | ShiftRegister { .. }
            | Lfsr { .. }
            | EdgeDetector
            | GrayCounter { .. }
            | SequenceDetector { .. }
            | Ram { .. }
            | RegFile { .. }
            | JohnsonCounter { .. }
            | RingCounter { .. }
            | BcdCounter
            | Fifo { .. }
            | SaturatingCounter { .. } => Category::Sequential,
            TruthTable { .. } => Category::Combinational,
            FsmTable { .. } => Category::Sequential,
        }
    }

    /// Canonical (lower snake case) module name for this family instance.
    pub fn module_name(&self) -> String {
        use DesignFamily::*;
        match self {
            HalfAdder => "half_adder".into(),
            FullAdder => "full_adder".into(),
            RippleCarryAdder { width } => format!("ripple_carry_adder_{width}"),
            BehavioralAdder { width } => format!("adder_{width}"),
            AddSub { width } => format!("addsub_{width}"),
            Multiplier { width } => format!("multiplier_{width}"),
            Comparator { width } => format!("comparator_{width}"),
            Mux { sel_width, width } => format!("mux{}_{width}", 1u32 << sel_width),
            Decoder { width } => format!("decoder_{width}to{}", 1u32 << width),
            PriorityEncoder { width } => format!("priority_encoder_{width}"),
            Parity { width, even } => {
                format!("{}_parity_{width}", if *even { "even" } else { "odd" })
            }
            Alu { width } => format!("alu_{width}"),
            Counter { width } => format!("counter_{width}"),
            UpDownCounter { width } => format!("updown_counter_{width}"),
            ModCounter { modulus } => format!("mod{modulus}_counter"),
            Dff => "dff_en".into(),
            ShiftRegister { width } => format!("shift_register_{width}"),
            Lfsr { width } => format!("lfsr_{width}"),
            EdgeDetector => "edge_detector".into(),
            GrayCounter { width } => format!("gray_counter_{width}"),
            BinToGray { width } => format!("bin_to_gray_{width}"),
            SequenceDetector { pattern } => {
                let bits: String = pattern.iter().map(|b| if *b { '1' } else { '0' }).collect();
                format!("seq_detector_{bits}")
            }
            Ram { addr_width, data_width } => format!("ram_{addr_width}x{data_width}"),
            RegFile { addr_width, data_width } => {
                format!("regfile_{addr_width}x{data_width}")
            }
            BarrelShifter { width } => format!("barrel_shifter_{width}"),
            JohnsonCounter { width } => format!("johnson_counter_{width}"),
            RingCounter { width } => format!("ring_counter_{width}"),
            BcdCounter => "bcd_counter".into(),
            SevenSeg => "seven_seg".into(),
            Fifo { addr_width, data_width } => format!("fifo_{addr_width}x{data_width}"),
            SaturatingCounter { width } => format!("sat_counter_{width}"),
            Majority => "majority3".into(),
            // Spec pairs keep the base module's name: the *code* side of
            // the pair is the base golden design, verbatim.
            TruthTable { base } => base.module_name(),
            FsmTable { pattern } => SequenceDetector { pattern: pattern.clone() }.module_name(),
        }
    }

    /// The keyword (paper Fig. 2 sense) this family expands.
    pub fn base_keyword(&self) -> &'static str {
        use DesignFamily::*;
        match self {
            HalfAdder
            | FullAdder
            | RippleCarryAdder { .. }
            | BehavioralAdder { .. }
            | AddSub { .. } => "adder",
            Multiplier { .. } => "multiplier",
            Comparator { .. } => "comparator",
            Mux { .. } => "multiplexer",
            Decoder { .. } => "decoder",
            PriorityEncoder { .. } => "encoder",
            Parity { .. } => "parity",
            Alu { .. } => "alu",
            Counter { .. } | UpDownCounter { .. } | ModCounter { .. } | GrayCounter { .. } => {
                "counter"
            }
            Dff | EdgeDetector => "flip-flop",
            ShiftRegister { .. } | Lfsr { .. } => "shift register",
            BinToGray { .. } => "code converter",
            SequenceDetector { .. } => "fsm",
            Ram { .. } | RegFile { .. } | Fifo { .. } => "memory",
            BarrelShifter { .. } => "shift register",
            JohnsonCounter { .. } | RingCounter { .. } | BcdCounter | SaturatingCounter { .. } => {
                "counter"
            }
            SevenSeg => "decoder",
            Majority => "parity",
            TruthTable { base } => base.base_keyword(),
            FsmTable { .. } => "fsm",
        }
    }

    /// Enumerates a representative set of family instances for corpus
    /// generation (the "expanded keywords" of Fig. 2).
    pub fn catalog() -> Vec<DesignFamily> {
        use DesignFamily::*;
        let mut out = vec![HalfAdder, FullAdder, Dff, EdgeDetector];
        for w in [2u32, 4, 6, 8] {
            out.push(RippleCarryAdder { width: w });
            out.push(Multiplier { width: w.min(6) });
        }
        for w in [4u32, 8, 12, 16] {
            out.push(BehavioralAdder { width: w });
            out.push(AddSub { width: w });
            out.push(Comparator { width: w });
            out.push(Alu { width: w });
            out.push(Counter { width: w });
            out.push(UpDownCounter { width: w });
            out.push(ShiftRegister { width: w });
            out.push(GrayCounter { width: w.min(8) });
            out.push(BinToGray { width: w.min(8) });
            out.push(Parity { width: w, even: w % 8 == 0 });
        }
        for s in [1u32, 2, 3] {
            out.push(Mux { sel_width: s, width: 4 });
            out.push(Mux { sel_width: s, width: 8 });
        }
        for w in [2u32, 3, 4] {
            out.push(Decoder { width: w });
            out.push(PriorityEncoder { width: w });
        }
        for m in [3u32, 5, 10, 12, 60] {
            out.push(ModCounter { modulus: m });
        }
        for w in [3u32, 4, 5, 7, 8] {
            out.push(Lfsr { width: w });
        }
        for pat in [
            [true, false, true].as_slice(),
            &[true, true, false, true],
            &[false, true, true],
            &[true, false, false, true, true],
        ] {
            out.push(SequenceDetector { pattern: pat.to_vec() });
        }
        for (a, d) in [(2u32, 4u32), (3, 8), (4, 8), (5, 16)] {
            out.push(Ram { addr_width: a, data_width: d });
        }
        for (a, d) in [(2u32, 8u32), (3, 16), (4, 32)] {
            out.push(RegFile { addr_width: a, data_width: d });
        }
        for w in [8u32, 16] {
            out.push(BarrelShifter { width: w });
        }
        for w in [3u32, 4, 5] {
            out.push(JohnsonCounter { width: w });
            out.push(RingCounter { width: w });
        }
        out.push(BcdCounter);
        out.push(SevenSeg);
        for (a, d) in [(2u32, 8u32), (3, 8), (4, 16)] {
            out.push(Fifo { addr_width: a, data_width: d });
        }
        for w in [2u32, 3, 4] {
            out.push(SaturatingCounter { width: w });
        }
        out.push(Majority);
        // Width clamping above can alias instances; keep the first of each.
        let mut seen = std::collections::HashSet::new();
        out.retain(|f| seen.insert(f.module_name()));
        out
    }

    /// Spec-pair families: each renders a non-textual spec (truth table or
    /// FSM transition table) *from* its golden design via the simulator.
    ///
    /// Deliberately **not** part of [`DesignFamily::catalog`]: the builder's
    /// plan phase draws family indices from the catalog, so growing it would
    /// shift every existing sample and break the byte-pinned shard digests.
    /// Spec pairs are mixed in additively via `CorpusBuilder::spec_samples`.
    pub fn spec_catalog() -> Vec<DesignFamily> {
        use DesignFamily::*;
        // Bases are capped at 5 total input bits (32 truth-table rows) so
        // the rendered spec stays a readable description.
        let mut out: Vec<DesignFamily> = [
            HalfAdder,
            FullAdder,
            Majority,
            Multiplier { width: 2 },
            Comparator { width: 2 },
            Decoder { width: 2 },
            Parity { width: 4, even: true },
            Parity { width: 5, even: false },
            BinToGray { width: 4 },
            Mux { sel_width: 1, width: 2 },
        ]
        .into_iter()
        .map(|f| TruthTable { base: Box::new(f) })
        .collect();
        for pat in
            [[true, false, true].as_slice(), &[false, true, true], &[true, true, false, true]]
        {
            out.push(FsmTable { pattern: pat.to_vec() });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_substantial_and_unique_names() {
        let cat = DesignFamily::catalog();
        assert!(cat.len() >= 60, "catalog has {} entries", cat.len());
        let mut names: Vec<String> = cat.iter().map(|f| f.module_name()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "module names must be unique");
    }

    #[test]
    fn categories_split() {
        let cat = DesignFamily::catalog();
        let comb = cat.iter().filter(|f| f.category() == Category::Combinational).count();
        let seq = cat.iter().filter(|f| f.category() == Category::Sequential).count();
        assert!(comb > 10);
        assert!(seq > 10);
    }

    #[test]
    fn module_names_are_snake_case() {
        for f in DesignFamily::catalog() {
            let n = f.module_name();
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{n}"
            );
        }
    }

    #[test]
    fn spec_catalog_is_disjoint_from_the_default_catalog() {
        // The default catalog feeds the builder's byte-pinned plan phase;
        // spec families must never leak into it.
        let cat = DesignFamily::catalog();
        assert!(!cat
            .iter()
            .any(|f| matches!(f, DesignFamily::TruthTable { .. } | DesignFamily::FsmTable { .. })));
        let specs = DesignFamily::spec_catalog();
        assert!(specs.len() >= 12, "spec catalog has {} entries", specs.len());
        assert!(specs
            .iter()
            .all(|f| matches!(f, DesignFamily::TruthTable { .. } | DesignFamily::FsmTable { .. })));
        // Both spec kinds are represented, and names stay snake_case.
        assert!(specs.iter().any(|f| f.category() == Category::Combinational));
        assert!(specs.iter().any(|f| f.category() == Category::Sequential));
        for f in &specs {
            let n = f.module_name();
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{n}"
            );
        }
    }

    #[test]
    fn base_keywords_cover_paper_examples() {
        // The paper names adders, multipliers, counters, FSMs as examples.
        let kws: std::collections::HashSet<&str> =
            DesignFamily::catalog().iter().map(|f| f.base_keyword()).collect();
        for k in ["adder", "multiplier", "counter", "fsm"] {
            assert!(kws.contains(k), "missing keyword {k}");
        }
    }
}
