//! The keyword database of Fig. 2.
//!
//! The paper seeds commercial-LLM generation with "general hardware and
//! Verilog design terms such as adders, multipliers, counters, FSMs, etc.",
//! categorised into combinational and sequential circuits, then expands
//! each keyword into specific variants ("ripple carry adders or carry-save
//! adders — this step was referred to as expanded-keywords").

use crate::families::{Category, DesignFamily};

/// A base keyword with its category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Keyword {
    /// The term, e.g. "adder".
    pub term: &'static str,
    /// Circuit category.
    pub category: Category,
}

/// An expanded keyword: a concrete variant of a base keyword, carrying the
/// design family that realises it.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpandedKeyword {
    /// The base keyword this expands.
    pub base: &'static str,
    /// Variant phrase, e.g. "4-bit ripple carry adder".
    pub phrase: String,
    /// The family instance generating this variant.
    pub family: DesignFamily,
}

/// The base keyword database.
pub fn keyword_database() -> Vec<Keyword> {
    vec![
        Keyword { term: "adder", category: Category::Combinational },
        Keyword { term: "multiplier", category: Category::Combinational },
        Keyword { term: "comparator", category: Category::Combinational },
        Keyword { term: "multiplexer", category: Category::Combinational },
        Keyword { term: "decoder", category: Category::Combinational },
        Keyword { term: "encoder", category: Category::Combinational },
        Keyword { term: "parity", category: Category::Combinational },
        Keyword { term: "alu", category: Category::Combinational },
        Keyword { term: "code converter", category: Category::Combinational },
        Keyword { term: "counter", category: Category::Sequential },
        Keyword { term: "flip-flop", category: Category::Sequential },
        Keyword { term: "shift register", category: Category::Sequential },
        Keyword { term: "fsm", category: Category::Sequential },
        Keyword { term: "memory", category: Category::Sequential },
    ]
}

/// Expands every base keyword into its concrete variants — one entry per
/// catalog family instance.
pub fn expanded_keywords() -> Vec<ExpandedKeyword> {
    DesignFamily::catalog()
        .into_iter()
        .map(|family| ExpandedKeyword {
            base: family.base_keyword(),
            phrase: family.module_name().replace('_', " "),
            family,
        })
        .collect()
}

/// Crafts the detailed-design-description prompt for an expanded keyword
/// (the "crafted input prompts" stage of Fig. 2).
pub fn craft_prompt(kw: &ExpandedKeyword) -> String {
    format!(
        "Write a synthesizable Verilog-2001 module implementing a {phrase}. \
         Use lower_snake_case naming, comment the design, prefer sized literals, \
         use non-blocking assignments in clocked always blocks, and include a \
         default arm in every case statement. Respond with the complete module only.",
        phrase = kw.phrase
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_covers_both_categories() {
        let db = keyword_database();
        assert!(db.iter().any(|k| k.category == Category::Combinational));
        assert!(db.iter().any(|k| k.category == Category::Sequential));
        assert!(db.len() >= 10);
    }

    #[test]
    fn expansion_references_known_bases() {
        let bases: std::collections::HashSet<&str> =
            keyword_database().iter().map(|k| k.term).collect();
        for kw in expanded_keywords() {
            assert!(bases.contains(kw.base), "unknown base {}", kw.base);
        }
    }

    #[test]
    fn expansion_is_larger_than_base() {
        assert!(expanded_keywords().len() > keyword_database().len() * 3);
    }

    #[test]
    fn prompts_mention_the_variant() {
        let kws = expanded_keywords();
        let p = craft_prompt(&kws[0]);
        assert!(p.contains(&kws[0].phrase));
        assert!(p.contains("Verilog"));
    }
}
