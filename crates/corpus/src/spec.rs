//! Correct-by-construction spec pairs: truth-table and FSM-transition-table
//! descriptions rendered *from* the golden elaborated design.
//!
//! The ordinary families pair code with a phrasal description rendered from
//! the structured spec ([`crate::describe`]). The families here go the
//! other way: the description is an exhaustive behavioural table produced
//! by sweeping the golden design through the compiled simulator, then
//! re-verified row by row against a reference-engine build of the same
//! source. A (spec, code) pair leaves this module only if both backends
//! agree on every row — a spec/code mismatch is a generator bug and panics,
//! the same contract `generate` applies to unparseable templates.

use crate::families::DesignFamily;
use crate::gen::{generate, Design};
use crate::style::StyleOptions;
use pyranet_verilog::ast::{BinaryOp, Expr, Module, PortDir, Range};
use pyranet_verilog::sim::exhaustive_assignments;
use pyranet_verilog::SimDesign;
use pyranet_verilog::SimMode;
use rand::Rng;
use std::fmt::Write as _;

/// Hard cap on total input bits for a truth-table base (64 rows). The
/// [`DesignFamily::spec_catalog`] bases all sit at or under 5 bits; the cap
/// exists so a future catalog edit cannot silently produce a megabyte
/// description.
pub const SPEC_TABLE_BIT_CAP: u32 = 6;

/// Renders a truth-table spec pair for a small combinational `base`.
///
/// The code side is the base family's design, generated as usual; the
/// description is its complete truth table as simulated, verified against
/// the reference engine before returning.
///
/// # Panics
///
/// Panics when `base` is not combinational, exceeds [`SPEC_TABLE_BIT_CAP`]
/// input bits, fails to simulate, or — the whole point — when the compiled
/// and reference backends disagree on any row. All of these are generator
/// bugs, not data conditions.
pub fn generate_truth_table<R: Rng>(
    base: &DesignFamily,
    style: &StyleOptions,
    rng: &mut R,
) -> Design {
    assert!(
        !matches!(base, DesignFamily::TruthTable { .. } | DesignFamily::FsmTable { .. }),
        "spec families do not nest: {base:?}"
    );
    let mut design = generate(base, style, rng);
    let inputs = data_ports(&design.module, PortDir::Input);
    let outputs = data_ports(&design.module, PortDir::Output);
    assert!(!inputs.is_empty() && !outputs.is_empty(), "{base:?} has no I/O");

    let widths: Vec<u32> = inputs.iter().map(|(_, w)| *w).collect();
    let rows = sweep_combinational(
        &design.source,
        &design.module.name,
        SimMode::Compiled,
        &inputs,
        &outputs,
    );

    // Differential verification: the spec rows must reproduce on the
    // reference engine. Compiled is the renderer, Reference the oracle.
    let oracle = sweep_combinational(
        &design.source,
        &design.module.name,
        SimMode::Reference,
        &inputs,
        &outputs,
    );
    for (i, (r, o)) in rows.iter().zip(oracle.iter()).enumerate() {
        assert_eq!(r, o, "truth-table row {i} of {base:?} fails re-verification");
    }

    let mut d = String::new();
    let _ = writeln!(
        d,
        "{} a Verilog module named `{}` implementing exactly the truth table below.",
        opening(rng),
        design.module.name
    );
    let _ = writeln!(d, "Inputs: {}. Outputs: {}.", port_list(&inputs), port_list(&outputs));
    let _ = writeln!(d, "All values are in binary, one row per input assignment.");
    let _ = writeln!(d);
    let in_hdr: Vec<&str> = inputs.iter().map(|(n, _)| n.as_str()).collect();
    let out_hdr: Vec<&str> = outputs.iter().map(|(n, _)| n.as_str()).collect();
    let _ = writeln!(d, "{} | {}", in_hdr.join(" "), out_hdr.join(" "));
    let mut sweep = exhaustive_assignments(&widths, SPEC_TABLE_BIT_CAP)
        .unwrap_or_else(|| panic!("{base:?} exceeds the spec bit cap"));
    for (ins, outs) in rows.iter() {
        let _ = sweep.next();
        let _ = writeln!(d, "{} | {}", bits_row(ins, &inputs), bits_row(outs, &outputs));
    }

    design.family = DesignFamily::TruthTable { base: Box::new(base.clone()) };
    design.description = d.trim_end().to_owned();
    design
}

/// Renders an FSM transition-table spec pair for a sequence detector.
///
/// For every input bit string of the pattern's length, the golden detector
/// is driven from reset (one bit per rising clock edge, first listed bit
/// first) and the hit output after each edge is tabulated. Rows are
/// verified against the reference engine before returning.
///
/// # Panics
///
/// Same contract as [`generate_truth_table`]: simulation failures or any
/// compiled/reference row disagreement are generator bugs and panic.
pub fn generate_fsm_table<R: Rng>(pattern: &[bool], style: &StyleOptions, rng: &mut R) -> Design {
    let base = DesignFamily::SequenceDetector { pattern: pattern.to_vec() };
    let mut design = generate(&base, style, rng);
    let clk = design.port("clock").expect("detector has a clock").to_owned();
    let rst = design.port("reset").expect("detector has a reset").to_owned();
    let din = design.port("data_in").expect("detector has a serial input").to_owned();
    let hit = design.port("hit").expect("detector has a hit output").to_owned();

    let len = pattern.len() as u32;
    let rows = sweep_detector(
        &design.source,
        &design.module.name,
        SimMode::Compiled,
        &clk,
        &rst,
        &din,
        &hit,
        len,
    );
    let oracle = sweep_detector(
        &design.source,
        &design.module.name,
        SimMode::Reference,
        &clk,
        &rst,
        &din,
        &hit,
        len,
    );
    for (i, (r, o)) in rows.iter().zip(oracle.iter()).enumerate() {
        assert_eq!(r, o, "fsm-table row {i} of {base:?} fails re-verification");
    }

    let mut d = String::new();
    let _ = writeln!(
        d,
        "{} a clocked Verilog module named `{}` with clock `{clk}`, synchronous-read \
         reset `{rst}`, serial input `{din}` and output `{hit}` that behaves exactly \
         per the table below.",
        opening(rng),
        design.module.name
    );
    let _ = writeln!(
        d,
        "Each row starts from reset ({rst} held high for one rising edge of {clk}, then \
         released); the {din} column lists the bits applied one per subsequent rising \
         edge, first bit first, and the {hit} column lists the value of {hit} sampled \
         after each of those edges."
    );
    let _ = writeln!(d);
    let _ = writeln!(d, "{din} | {hit}");
    for (ins, hits) in rows.iter() {
        let istr: String = ins.iter().map(|b| if *b { '1' } else { '0' }).collect();
        let hstr: String = hits.iter().map(|b| if *b { '1' } else { '0' }).collect();
        let _ = writeln!(d, "{istr} | {hstr}");
    }

    design.family = DesignFamily::FsmTable { pattern: pattern.to_vec() };
    design.description = d.trim_end().to_owned();
    design
}

fn opening<R: Rng>(rng: &mut R) -> &'static str {
    match rng.random_range(0..3) {
        0 => "Write",
        1 => "Implement",
        _ => "Design",
    }
}

/// (name, width) of the module's ports in declaration order for one
/// direction, widths const-evaluated from the range expressions.
fn data_ports(module: &Module, dir: PortDir) -> Vec<(String, u32)> {
    module
        .ports
        .iter()
        .filter(|p| p.dir == dir)
        .map(|p| {
            let w = p.range.as_ref().map(|r| {
                const_range_width(r)
                    .unwrap_or_else(|| panic!("non-constant port range on {}", p.name))
            });
            (p.name.clone(), w.unwrap_or(1))
        })
        .collect()
}

fn const_range_width(r: &Range) -> Option<u32> {
    fn cv(e: &Expr) -> Option<i64> {
        match e {
            Expr::Literal { value, .. } => Some(*value as i64),
            Expr::Binary(BinaryOp::Sub, a, b) => Some(cv(a)? - cv(b)?),
            Expr::Binary(BinaryOp::Add, a, b) => Some(cv(a)? + cv(b)?),
            _ => None,
        }
    }
    Some((cv(&r.msb)? - cv(&r.lsb)?).unsigned_abs() as u32 + 1)
}

fn port_list(ports: &[(String, u32)]) -> String {
    ports
        .iter()
        .map(|(n, w)| if *w == 1 { format!("`{n}` (1 bit)") } else { format!("`{n}` ({w} bits)") })
        .collect::<Vec<_>>()
        .join(", ")
}

fn bits_row(values: &[u64], ports: &[(String, u32)]) -> String {
    values
        .iter()
        .zip(ports.iter())
        .map(|(v, (_, w))| format!("{v:0w$b}", w = *w as usize))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Sweeps every input assignment through one backend, returning
/// (input values, output values) rows in counter order.
fn sweep_combinational(
    src: &str,
    top: &str,
    mode: SimMode,
    inputs: &[(String, u32)],
    outputs: &[(String, u32)],
) -> Vec<(Vec<u64>, Vec<u64>)> {
    let design = SimDesign::build(src, top, mode)
        .unwrap_or_else(|e| panic!("golden {top} fails to build ({mode}): {e}"));
    let mut sim = design.instantiate().unwrap_or_else(|e| panic!("{top}: {e}"));
    let widths: Vec<u32> = inputs.iter().map(|(_, w)| *w).collect();
    let sweep = exhaustive_assignments(&widths, SPEC_TABLE_BIT_CAP)
        .unwrap_or_else(|| panic!("{top} exceeds the {SPEC_TABLE_BIT_CAP}-bit spec cap"));
    let mut rows = Vec::with_capacity(sweep.len());
    for values in sweep {
        for ((name, _), v) in inputs.iter().zip(values.iter()) {
            sim.set(name, *v).unwrap_or_else(|e| panic!("{top}.{name}: {e}"));
        }
        let outs = outputs
            .iter()
            .map(|(name, _)| sim.get(name).unwrap_or_else(|e| panic!("{top}.{name}: {e}")).as_u64())
            .collect();
        rows.push((values, outs));
    }
    rows
}

/// Drives the detector from reset over every input bit string of length
/// `len`, returning (input bits, hit-after-each-edge) rows.
#[allow(clippy::too_many_arguments)]
fn sweep_detector(
    src: &str,
    top: &str,
    mode: SimMode,
    clk: &str,
    rst: &str,
    din: &str,
    hit: &str,
    len: u32,
) -> Vec<(Vec<bool>, Vec<bool>)> {
    let design = SimDesign::build(src, top, mode)
        .unwrap_or_else(|e| panic!("golden {top} fails to build ({mode}): {e}"));
    let mut rows = Vec::with_capacity(1usize << len);
    for word in 0u64..(1 << len) {
        let mut sim = design.instantiate().unwrap_or_else(|e| panic!("{top}: {e}"));
        sim.set(rst, 1).unwrap_or_else(|e| panic!("{top}.{rst}: {e}"));
        sim.clock(clk).unwrap_or_else(|e| panic!("{top}.{clk}: {e}"));
        sim.set(rst, 0).unwrap_or_else(|e| panic!("{top}.{rst}: {e}"));
        let mut ins = Vec::with_capacity(len as usize);
        let mut hits = Vec::with_capacity(len as usize);
        // First listed bit first: bit (len-1) of the counter word leads.
        for i in (0..len).rev() {
            let b = (word >> i) & 1 == 1;
            ins.push(b);
            sim.set(din, u64::from(b)).unwrap_or_else(|e| panic!("{top}.{din}: {e}"));
            sim.clock(clk).unwrap_or_else(|e| panic!("{top}.{clk}: {e}"));
            hits.push(sim.get(hit).unwrap_or_else(|e| panic!("{top}.{hit}: {e}")).as_u64() == 1);
        }
        rows.push((ins, hits));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_verilog::check_source;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn whole_spec_catalog_generates_and_verifies() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5bec);
        for family in DesignFamily::spec_catalog() {
            let d = generate(&family, &StyleOptions::clean(), &mut rng);
            assert!(check_source(&d.source).is_clean(), "{family:?}:\n{}", d.source);
            assert_eq!(d.module.name, family.module_name());
            assert_eq!(d.family, family);
            assert!(
                d.description.contains('|'),
                "{family:?} description has no table:\n{}",
                d.description
            );
        }
    }

    #[test]
    fn truth_table_rows_match_hand_computed_half_adder() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let fam = DesignFamily::TruthTable { base: Box::new(DesignFamily::HalfAdder) };
        let d = generate(&fam, &StyleOptions::clean(), &mut rng);
        // 2 inputs -> 4 rows; half adder: sum = a^b, carry = a&b. First
        // input increments fastest (counter low bits first).
        for row in ["0 0 | 0 0", "1 0 | 1 0", "0 1 | 1 0", "1 1 | 0 1"] {
            assert!(d.description.contains(row), "missing row {row:?} in:\n{}", d.description);
        }
    }

    #[test]
    fn truth_table_row_count_is_exhaustive() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let fam = DesignFamily::TruthTable {
            base: Box::new(DesignFamily::Parity { width: 4, even: true }),
        };
        let d = generate(&fam, &StyleOptions::clean(), &mut rng);
        let table_rows = d
            .description
            .lines()
            .filter(|l| l.contains('|') && l.chars().next().is_some_and(|c| c == '0' || c == '1'))
            .count();
        assert_eq!(table_rows, 16, "4-bit parity sweeps 16 rows:\n{}", d.description);
    }

    #[test]
    fn fsm_table_matches_detector_semantics() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let pat = vec![true, false, true];
        let fam = DesignFamily::FsmTable { pattern: pat.clone() };
        let d = generate(&fam, &StyleOptions::clean(), &mut rng);
        // Driving exactly the pattern lights hit on the final bit only.
        assert!(d.description.contains("101 | 001"), "{}", d.description);
        // And all 8 strings of length 3 are tabulated.
        for word in 0..8u32 {
            let s: String =
                (0..3).rev().map(|i| if (word >> i) & 1 == 1 { '1' } else { '0' }).collect();
            assert!(d.description.contains(&format!("{s} | ")), "missing {s}:\n{}", d.description);
        }
    }

    #[test]
    fn spec_pairs_survive_sloppy_styles() {
        // Style degradation renames ports and drops comments but must not
        // change behaviour — tables re-verify under every style.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for family in DesignFamily::spec_catalog().into_iter().take(4) {
            let style = StyleOptions::sampled(1.0, &mut rng);
            let d = generate(&family, &style, &mut rng);
            assert!(check_source(&d.source).is_compilable(), "{family:?}:\n{}", d.source);
        }
    }
}
