//! Property tests for the defect injectors over *generated* corpus designs.
//!
//! The unit tests in `defect.rs` pin each injector on a hand-written
//! module; these properties sweep the whole design catalog under random
//! styles and assert the injectors' contract on every source the builder
//! can actually produce: each injected defect (a) changes the source and
//! (b) lands in its labeled verdict class — `SyntaxError` for syntax
//! defects, `DependencyIssue` for phantom-module injection, and
//! still-compilable for textual style rot.

use proptest::prelude::*;
use pyranet_corpus::defect::{
    apply_syntax_defect_checked, degrade_text_checked, inject_dependency_issue_checked,
    inject_syntax_error_checked, SyntaxDefect,
};
use pyranet_corpus::families::DesignFamily;
use pyranet_corpus::gen::generate;
use pyranet_corpus::style::StyleOptions;
use pyranet_verilog::{check_source, SyntaxVerdict};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Generates one design from the catalog (or spec catalog) picked by seed.
fn catalog_design(seed: u64, sloppiness: f64, spec: bool) -> String {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let catalog = if spec { DesignFamily::spec_catalog() } else { DesignFamily::catalog() };
    let family = &catalog[(seed as usize) % catalog.len()];
    let style = StyleOptions::sampled(sloppiness, &mut rng);
    generate(family, &style, &mut rng).source
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every specific syntax defect mutates every generated design and the
    /// result fails the syntax check — never silently clean, never merely a
    /// dependency issue.
    #[test]
    fn syntax_defects_mutate_and_break_generated_designs(
        seed in 0u64..400,
        sloppiness in 0.0f64..1.0,
    ) {
        // Odd seeds draw from the spec catalog, even from the default one.
        let src = catalog_design(seed, sloppiness, seed % 2 == 1);
        for defect in SyntaxDefect::ALL {
            let inj = apply_syntax_defect_checked(&src, defect);
            prop_assert!(inj.mutated, "{defect:?} was a no-op on:\n{src}");
            prop_assert!(inj.source != src);
            let v = check_source(&inj.source);
            prop_assert!(
                matches!(v, SyntaxVerdict::SyntaxError { .. }),
                "{defect:?} produced {v:?}, not SyntaxError:\n{}",
                inj.source
            );
        }
    }

    /// The random-defect entry point honours the same contract as the
    /// per-defect one, for any RNG stream.
    #[test]
    fn random_syntax_injection_lands_in_the_syntax_class(
        seed in 0u64..400,
        inj_seed in 0u64..1_000,
        sloppiness in 0.0f64..1.0,
    ) {
        let src = catalog_design(seed, sloppiness, false);
        let mut rng = ChaCha8Rng::seed_from_u64(inj_seed);
        let inj = inject_syntax_error_checked(&src, &mut rng);
        prop_assert!(inj.mutated);
        prop_assert!(matches!(
            check_source(&inj.source),
            SyntaxVerdict::SyntaxError { .. }
        ));
    }

    /// Dependency injection always mutates and always lands in the
    /// dependency-issue class on generated (parseable) designs.
    #[test]
    fn dependency_injection_lands_in_the_dependency_class(
        seed in 0u64..400,
        inj_seed in 0u64..1_000,
        sloppiness in 0.0f64..1.0,
    ) {
        let src = catalog_design(seed, sloppiness, seed % 2 == 1);
        let mut rng = ChaCha8Rng::seed_from_u64(inj_seed);
        let inj = inject_dependency_issue_checked(&src, &mut rng);
        prop_assert!(inj.mutated, "dependency injection was a no-op on:\n{src}");
        let v = check_source(&inj.source);
        prop_assert!(
            matches!(v, SyntaxVerdict::DependencyIssue { .. }),
            "expected DependencyIssue, got {v:?}:\n{}",
            inj.source
        );
    }

    /// Style rot keeps every generated design compilable at any severity,
    /// and its `mutated` flag is truthful either way.
    #[test]
    fn degraded_designs_stay_compilable(
        seed in 0u64..400,
        inj_seed in 0u64..1_000,
        sloppiness in 0.0f64..1.0,
        severity in 0.0f64..1.0,
    ) {
        let src = catalog_design(seed, sloppiness, false);
        let mut rng = ChaCha8Rng::seed_from_u64(inj_seed);
        let inj = degrade_text_checked(&src, severity, &mut rng);
        prop_assert!(
            check_source(&inj.source).is_compilable(),
            "degrade_text broke the design:\n{}",
            inj.source
        );
        prop_assert_eq!(inj.mutated, inj.source != src);
    }
}
