//! The Table IV erroneous-dataset construction.
//!
//! Paper §IV-E: "we randomly shuffled the codes, descriptions, and ranking
//! information among the data entries, thereby creating mismatched sets of
//! codes, descriptions, and rankings within each row". Fine-tuning on this
//! deliberately-corrupted dataset degrades the model, which validates the
//! integrity of the real labels.

use crate::dataset::{CuratedSample, PyraNetDataset};
use rand::seq::SliceRandom;
use rand::Rng;

/// Produces the mismatched dataset: descriptions and (rank, tier, layer)
/// label groups are each permuted independently of the code column, so a
/// row's description no longer describes its code and its rank no longer
/// reflects its quality.
pub fn shuffle_labels<R: Rng>(dataset: &PyraNetDataset, rng: &mut R) -> PyraNetDataset {
    let samples: Vec<&CuratedSample> = dataset.iter().collect();
    let n = samples.len();
    let mut desc_perm: Vec<usize> = (0..n).collect();
    desc_perm.shuffle(rng);
    let mut label_perm: Vec<usize> = (0..n).collect();
    label_perm.shuffle(rng);
    samples
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let d = samples[desc_perm[i]];
            let l = samples[label_perm[i]];
            CuratedSample {
                id: s.id,
                source: s.source.clone(),
                description: d.description.clone(),
                rank: l.rank,
                tier: l.tier,
                layer: l.layer,
                dependency_issue: l.dependency_issue,
            }
        })
        .collect()
}

/// Fraction of rows whose description still matches the code it was
/// originally paired with (a fixed point of the permutation). Used to
/// verify the shuffle actually decouples the columns.
pub fn description_match_fraction(original: &PyraNetDataset, shuffled: &PyraNetDataset) -> f64 {
    let orig: std::collections::HashMap<u64, &str> =
        original.iter().map(|s| (s.id, s.description.as_str())).collect();
    let total = shuffled.len().max(1);
    let matches =
        shuffled.iter().filter(|s| orig.get(&s.id).is_some_and(|d| *d == s.description)).count();
    matches as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Layer;
    use crate::rank::Rank;
    use pyranet_verilog::metrics::ComplexityTier;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn make_dataset(n: u64) -> PyraNetDataset {
        (0..n)
            .map(|id| {
                let rank = Rank::new((id % 21) as u8);
                CuratedSample {
                    id,
                    source: format!("module m{id}(input a, output y); assign y = a; endmodule"),
                    description: format!("unique description {id}"),
                    rank,
                    tier: ComplexityTier::Basic,
                    layer: Layer::assign(rank, false),
                    dependency_issue: false,
                }
            })
            .collect()
    }

    #[test]
    fn shuffle_preserves_size_and_sources() {
        let ds = make_dataset(100);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let bad = shuffle_labels(&ds, &mut rng);
        assert_eq!(bad.len(), ds.len());
        let mut orig_sources: Vec<&str> = ds.iter().map(|s| s.source.as_str()).collect();
        let mut bad_sources: Vec<&str> = bad.iter().map(|s| s.source.as_str()).collect();
        orig_sources.sort_unstable();
        bad_sources.sort_unstable();
        assert_eq!(orig_sources, bad_sources, "codes are kept, only labels move");
    }

    #[test]
    fn shuffle_preserves_description_multiset() {
        let ds = make_dataset(50);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let bad = shuffle_labels(&ds, &mut rng);
        let mut a: Vec<&str> = ds.iter().map(|s| s.description.as_str()).collect();
        let mut b: Vec<&str> = bad.iter().map(|s| s.description.as_str()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_decouples_descriptions_from_code() {
        let ds = make_dataset(200);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let bad = shuffle_labels(&ds, &mut rng);
        let frac = description_match_fraction(&ds, &bad);
        assert!(frac < 0.05, "only ~1/n fixed points expected, got {frac}");
    }

    #[test]
    fn unshuffled_match_fraction_is_one() {
        let ds = make_dataset(20);
        assert_eq!(description_match_fraction(&ds, &ds), 1.0);
    }

    #[test]
    fn empty_dataset_shuffles_to_empty() {
        let ds = PyraNetDataset::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert!(shuffle_labels(&ds, &mut rng).is_empty());
    }
}
