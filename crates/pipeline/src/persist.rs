//! Sharded JSONL persistence with a manifest.
//!
//! Dataset export/import is the interface every downstream consumer of the
//! pyramid uses, so it follows the shape real Verilog corpora ship in
//! (MG-Verilog, VerilogDB): a directory of JSONL **shards** plus a
//! `manifest.json` that records, per shard, the file name, sample count,
//! byte size, and an FNV-1a content checksum. Import verifies every shard
//! against the manifest, so a truncated or corrupted shard is detected and
//! the offending file is named — never silently absorbed.
//!
//! Two sharding policies ([`ShardSpec`]):
//!
//! * [`ShardSpec::PerLayer`] — one shard per populated pyramid layer
//!   (`layer-1.jsonl` … `layer-6.jsonl`), so consumers can stream a single
//!   quality band. Samples keep their relative order inside each layer;
//!   re-importing yields the layer-grouped (stable) permutation.
//! * [`ShardSpec::MaxSamples`] — fixed-size shards in dataset order
//!   (`shard-00000.jsonl`, …), so re-importing is **bit-identical** to the
//!   exported dataset.
//!
//! Shard serialization fans out through [`pyranet_exec::par_map`]; shard
//! assignment is a pure function of sample index (and layer), so the bytes
//! on disk are identical at any thread count. Every write path flushes
//! explicitly and propagates the error — a short write (disk full, quota)
//! can never report success.

use crate::dataset::{parse_jsonl_line, CuratedSample, PyraNetDataset};
use crate::layers::Layer;
use crate::stats::Funnel;
use pyranet_cache::StageProvenance;
use pyranet_exec::{par_map, ExecConfig};
use serde::{Deserialize, Serialize};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File name of the shard index inside an export directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Manifest schema version written by this build. Version 2 added the
/// optional curation funnel and the stage-provenance records (both always
/// present as fields; `funnel` is `null` and `provenance` empty when the
/// exporter has nothing to record).
pub const FORMAT_VERSION: u32 = 2;

/// How a dataset is split into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSpec {
    /// One shard per populated layer (`layer-<i>.jsonl`), apex first.
    /// Import order is layer-grouped: a stable permutation of the input.
    PerLayer,
    /// Shards of at most this many samples, in dataset order
    /// (`shard-<k>.jsonl`). Import order is bit-identical to the input.
    MaxSamples(usize),
}

/// One shard's entry in the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Shard file name, relative to the manifest's directory.
    pub file: String,
    /// Samples (JSONL lines) in the shard.
    pub samples: u64,
    /// Shard size in bytes — a cheap truncation check before hashing.
    pub bytes: u64,
    /// FNV-1a 64-bit checksum of the shard's bytes, 16 lowercase hex
    /// digits.
    pub checksum: String,
}

/// The shard index: dataset-level counts plus per-shard integrity data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Manifest schema version (see [`FORMAT_VERSION`]).
    pub format_version: u32,
    /// Samples across all shards.
    pub total_samples: u64,
    /// Per-layer sample counts, apex first (the Fig. 1-a pyramid).
    pub layer_counts: [u64; 6],
    /// The curation funnel of the run that produced this export, when the
    /// exporter had it (`null` for datasets assembled outside a pipeline
    /// run).
    pub funnel: Option<Funnel>,
    /// Stage provenance of the producing pipeline configuration (stage
    /// name, artifact version, config fingerprint); empty when unknown.
    pub provenance: Vec<StageProvenance>,
    /// Shards in import order.
    pub shards: Vec<ShardEntry>,
}

/// Run metadata an exporter can embed into the shard manifest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExportMeta {
    /// The producing run's curation funnel.
    pub funnel: Option<Funnel>,
    /// The producing run's stage provenance.
    pub provenance: Vec<StageProvenance>,
}

impl ShardManifest {
    /// Reads and validates `manifest.json` from an export directory.
    ///
    /// # Errors
    ///
    /// I/O errors, malformed JSON (attributed to the manifest file), and
    /// unsupported `format_version`s.
    pub fn load(dir: &Path) -> io::Result<ShardManifest> {
        let path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        let manifest: ShardManifest = serde_json::from_str(&text).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{MANIFEST_FILE}: {e}"))
        })?;
        if manifest.format_version != FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{MANIFEST_FILE}: unsupported format_version {} (this build reads {})",
                    manifest.format_version, FORMAT_VERSION
                ),
            ));
        }
        Ok(manifest)
    }
}

/// FNV-1a 64-bit hash — the shard content checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders a checksum the way the manifest stores it.
pub fn format_checksum(sum: u64) -> String {
    format!("{sum:016x}")
}

impl PyraNetDataset {
    /// Exports the dataset as JSONL shards plus `manifest.json` under
    /// `dir` (created if missing). Shards are serialized in parallel
    /// through `exec`; the files written are byte-identical at any thread
    /// count. Every file is flush-checked before success is reported.
    ///
    /// # Errors
    ///
    /// I/O failures (including flush/short-write), and
    /// `ShardSpec::MaxSamples(0)`.
    pub fn to_shards(
        &self,
        dir: &Path,
        spec: ShardSpec,
        exec: &ExecConfig,
    ) -> io::Result<ShardManifest> {
        self.to_shards_with_meta(dir, spec, exec, ExportMeta::default())
    }

    /// [`PyraNetDataset::to_shards`] with run metadata (funnel, stage
    /// provenance) embedded into the manifest.
    ///
    /// # Errors
    ///
    /// Same as [`PyraNetDataset::to_shards`].
    pub fn to_shards_with_meta(
        &self,
        dir: &Path,
        spec: ShardSpec,
        exec: &ExecConfig,
        meta: ExportMeta,
    ) -> io::Result<ShardManifest> {
        let groups = self.plan_shards(spec)?;
        std::fs::create_dir_all(dir)?;

        // Serialization is a pure per-shard function, so the fan-out keeps
        // the executor's determinism contract; writing stays sequential in
        // shard order so the first failure reported is stable.
        let rendered: Vec<(String, Result<Vec<u8>, String>)> =
            par_map(exec, groups, |(name, samples)| {
                let mut bytes = Vec::new();
                let mut line = String::with_capacity(1024);
                for s in samples {
                    line.clear();
                    if let Err(e) = serde_json::to_string_into(s, &mut line) {
                        return (name, Err(e.to_string()));
                    }
                    line.push('\n');
                    bytes.extend_from_slice(line.as_bytes());
                }
                (name, Ok(bytes))
            });

        let mut shards = Vec::with_capacity(rendered.len());
        for (name, bytes) in rendered {
            let bytes = bytes
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{name}: {e}")))?;
            let samples = bytes.iter().filter(|&&b| b == b'\n').count() as u64;
            write_flushed(&dir.join(&name), &bytes)
                .map_err(|e| io::Error::new(e.kind(), format!("{name}: {e}")))?;
            shards.push(ShardEntry {
                file: name,
                samples,
                bytes: bytes.len() as u64,
                checksum: format_checksum(fnv1a64(&bytes)),
            });
        }

        let mut layer_counts = [0u64; 6];
        for (i, &n) in self.layer_counts().iter().enumerate() {
            layer_counts[i] = n as u64;
        }
        let manifest = ShardManifest {
            format_version: FORMAT_VERSION,
            total_samples: self.len() as u64,
            layer_counts,
            funnel: meta.funnel,
            provenance: meta.provenance,
            shards,
        };
        let text = serde_json::to_string_pretty(&manifest)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        write_flushed(&dir.join(MANIFEST_FILE), text.as_bytes())
            .map_err(|e| io::Error::new(e.kind(), format!("{MANIFEST_FILE}: {e}")))?;
        Ok(manifest)
    }

    /// Imports a sharded export, verifying every shard's byte size, FNV-1a
    /// checksum, and sample count against the manifest, plus the
    /// dataset-level totals. Shards are read and parsed in parallel
    /// through `exec`; failures name the offending file (and line, for
    /// parse errors), and the first failure in shard order wins at any
    /// thread count.
    ///
    /// # Errors
    ///
    /// I/O failures, checksum/size/count mismatches, malformed JSONL.
    pub fn from_shards(dir: &Path, exec: &ExecConfig) -> io::Result<PyraNetDataset> {
        let manifest = ShardManifest::load(dir)?;
        let parsed = par_map(exec, manifest.shards.iter().collect(), |entry: &ShardEntry| {
            read_shard(dir, entry)
        });
        let mut ds = PyraNetDataset::new();
        for shard in parsed {
            ds.extend(shard?);
        }
        if ds.len() as u64 != manifest.total_samples {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{MANIFEST_FILE}: total_samples is {} but shards hold {}",
                    manifest.total_samples,
                    ds.len()
                ),
            ));
        }
        let counts = ds.layer_counts();
        for (i, &expected) in manifest.layer_counts.iter().enumerate() {
            if counts[i] as u64 != expected {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{MANIFEST_FILE}: layer {} count is {} but shards hold {}",
                        i + 1,
                        expected,
                        counts[i]
                    ),
                ));
            }
        }
        Ok(ds)
    }

    /// Shard groups for `spec`: `(file name, samples)` in import order.
    /// Assignment is a pure function of sample index and layer, so the
    /// plan (and therefore the bytes written) never depends on threading.
    fn plan_shards(&self, spec: ShardSpec) -> io::Result<Vec<(String, Vec<&CuratedSample>)>> {
        match spec {
            ShardSpec::PerLayer => Ok(Layer::ALL
                .iter()
                .map(|&l| (format!("layer-{}.jsonl", l.index()), self.layer(l).collect()))
                .filter(|(_, samples): &(_, Vec<&CuratedSample>)| !samples.is_empty())
                .collect()),
            ShardSpec::MaxSamples(0) => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "shard size must be at least 1 sample",
            )),
            ShardSpec::MaxSamples(size) => {
                let all: Vec<&CuratedSample> = self.iter().collect();
                Ok(all
                    .chunks(size)
                    .enumerate()
                    .map(|(k, chunk)| (format!("shard-{k:05}.jsonl"), chunk.to_vec()))
                    .collect())
            }
        }
    }
}

/// Reads and verifies one shard: byte size first (cheap truncation check),
/// then the FNV-1a checksum, then line-by-line parsing with `file:line`
/// error context, then the sample count.
///
/// # Errors
///
/// I/O failures and any mismatch with the manifest entry; every message
/// names the shard file.
pub fn read_shard(dir: &Path, entry: &ShardEntry) -> io::Result<Vec<CuratedSample>> {
    let path = dir.join(&entry.file);
    let bytes = std::fs::read(&path)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", entry.file)))?;
    if bytes.len() as u64 != entry.bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: shard truncated or padded (manifest records {} bytes, file has {})",
                entry.file,
                entry.bytes,
                bytes.len()
            ),
        ));
    }
    let found = format_checksum(fnv1a64(&bytes));
    if found != entry.checksum {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: checksum mismatch (manifest {}, file {found}) — shard corrupted",
                entry.file, entry.checksum
            ),
        ));
    }
    let text = std::str::from_utf8(&bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", entry.file)))?;
    let mut samples = Vec::with_capacity(entry.samples as usize);
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        samples.push(parse_jsonl_line(line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}:{}: {e}", entry.file, i + 1))
        })?);
    }
    if samples.len() as u64 != entry.samples {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: manifest records {} samples, shard holds {}",
                entry.file,
                entry.samples,
                samples.len()
            ),
        ));
    }
    Ok(samples)
}

/// Loads a dataset from either a single `.jsonl` file, a sharded export
/// directory, or a path to its `manifest.json` — the one entry point CLI
/// consumers need. Single-file parse errors carry `path:line` context.
///
/// # Errors
///
/// I/O failures, malformed input, shard integrity mismatches.
pub fn load_dataset(path: &Path, exec: &ExecConfig) -> io::Result<PyraNetDataset> {
    if path.is_dir() {
        return PyraNetDataset::from_shards(path, exec);
    }
    if path.file_name().map(|n| n == MANIFEST_FILE).unwrap_or(false) {
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        return PyraNetDataset::from_shards(dir.unwrap_or(Path::new(".")), exec);
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
    let mut ds = PyraNetDataset::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        ds.push(parse_jsonl_line(line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}:{}: {e}", path.display(), i + 1))
        })?);
    }
    Ok(ds)
}

/// Sequential shard-by-shard reader: verifies and yields one shard's
/// samples at a time, so consumers (e.g. the training data loader) hold at
/// most one shard in memory instead of the whole dataset.
#[derive(Debug)]
pub struct ShardStream {
    dir: PathBuf,
    manifest: ShardManifest,
    next: usize,
}

impl ShardStream {
    /// Opens a sharded export directory for streaming.
    ///
    /// # Errors
    ///
    /// Manifest I/O and validation failures (shards are only touched as
    /// they are streamed).
    pub fn open(dir: &Path) -> io::Result<ShardStream> {
        Ok(ShardStream { dir: dir.to_path_buf(), manifest: ShardManifest::load(dir)?, next: 0 })
    }

    /// The manifest read at open time.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Reads, verifies, and returns the next shard's samples; `None` after
    /// the last shard.
    pub fn next_shard(&mut self) -> Option<io::Result<Vec<CuratedSample>>> {
        let entry = self.manifest.shards.get(self.next)?;
        self.next += 1;
        Some(read_shard(&self.dir, entry))
    }
}

impl Iterator for ShardStream {
    type Item = io::Result<Vec<CuratedSample>>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_shard()
    }
}

/// Creates/truncates `path`, writes `bytes`, and flushes explicitly so
/// short writes surface as errors instead of being swallowed by `Drop`.
fn write_flushed(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(bytes)?;
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::Rank;
    use proptest::prelude::*;
    use pyranet_verilog::metrics::ComplexityTier;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!("pyranet-persist-{tag}-{}-{n}", std::process::id()))
    }

    /// A dataset with adversarial strings (quotes, backslashes, newlines
    /// in escaped form, non-ASCII) so the round-trip exercises escaping.
    fn random_dataset(seed: u64, n: usize) -> PyraNetDataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let alphabet: Vec<char> = "abz09 _\"\\/{}:,\tμΩ#".chars().collect();
        (0..n as u64)
            .map(|id| {
                let text = |rng: &mut ChaCha8Rng, max_len: usize| -> String {
                    let len = rng.random_range(0..max_len);
                    (0..len).map(|_| alphabet[rng.random_range(0..alphabet.len())]).collect()
                };
                let source = text(&mut rng, 40);
                let description = text(&mut rng, 25);
                let rank = Rank::new(rng.random_range(0..=20u8));
                let dep = rng.random_bool(0.2);
                let tier = match rng.random_range(0..4u8) {
                    0 => ComplexityTier::Basic,
                    1 => ComplexityTier::Intermediate,
                    2 => ComplexityTier::Advanced,
                    _ => ComplexityTier::Expert,
                };
                CuratedSample {
                    id,
                    source,
                    description,
                    rank,
                    tier,
                    layer: Layer::assign(rank, dep),
                    dependency_issue: dep,
                }
            })
            .collect()
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(format_checksum(0xaf), "00000000000000af");
    }

    #[test]
    fn per_layer_export_groups_by_layer_and_names_shards() {
        let ds = random_dataset(1, 60);
        let dir = temp_dir("per-layer");
        let exec = ExecConfig::new().threads(2);
        let manifest = ds.to_shards(&dir, ShardSpec::PerLayer, &exec).unwrap();
        assert_eq!(manifest.total_samples, 60);
        for entry in &manifest.shards {
            assert!(entry.file.starts_with("layer-"), "{}", entry.file);
            assert!(entry.samples > 0, "empty shards are skipped");
        }
        // Import yields the stable layer-grouped permutation.
        let back = PyraNetDataset::from_shards(&dir, &exec).unwrap();
        let grouped: PyraNetDataset =
            Layer::ALL.iter().flat_map(|&l| ds.layer(l).cloned()).collect();
        assert_eq!(back, grouped);
        assert_eq!(back.layer_counts(), ds.layer_counts());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_shard_size_is_rejected() {
        let ds = random_dataset(2, 5);
        let dir = temp_dir("zero");
        let err = ds.to_shards(&dir, ShardSpec::MaxSamples(0), &ExecConfig::new()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn empty_dataset_round_trips() {
        let ds = PyraNetDataset::new();
        let dir = temp_dir("empty");
        let exec = ExecConfig::new();
        for spec in [ShardSpec::PerLayer, ShardSpec::MaxSamples(8)] {
            let manifest = ds.to_shards(&dir, spec, &exec).unwrap();
            assert!(manifest.shards.is_empty());
            assert_eq!(PyraNetDataset::from_shards(&dir, &exec).unwrap(), ds);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_shard_is_detected_and_named() {
        let ds = random_dataset(3, 40);
        let dir = temp_dir("truncate");
        let manifest = ds.to_shards(&dir, ShardSpec::MaxSamples(10), &ExecConfig::new()).unwrap();
        let victim = &manifest.shards[2];
        let path = dir.join(&victim.file);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = PyraNetDataset::from_shards(&dir, &ExecConfig::new()).unwrap_err();
        assert!(err.to_string().contains(&victim.file), "{err}");
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_shard_is_named() {
        let ds = random_dataset(4, 20);
        let dir = temp_dir("missing");
        let manifest = ds.to_shards(&dir, ShardSpec::MaxSamples(7), &ExecConfig::new()).unwrap();
        std::fs::remove_file(dir.join(&manifest.shards[1].file)).unwrap();
        let err = PyraNetDataset::from_shards(&dir, &ExecConfig::new()).unwrap_err();
        assert!(err.to_string().contains(&manifest.shards[1].file), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_line_is_attributed_to_file_and_line() {
        let ds = random_dataset(5, 12);
        let dir = temp_dir("badline");
        let manifest = ds.to_shards(&dir, ShardSpec::MaxSamples(4), &ExecConfig::new()).unwrap();
        let victim = &manifest.shards[1];
        let path = dir.join(&victim.file);
        let mut text = std::fs::read_to_string(&path).unwrap();
        let second_line_start = text.find('\n').unwrap() + 1;
        text.insert_str(second_line_start, "{\"not\": \"a sample\"}\n");
        std::fs::write(&path, &text).unwrap();
        // Re-stamp the manifest so the parse error (not the checksum) fires.
        let entry = ShardEntry {
            bytes: text.len() as u64,
            checksum: format_checksum(fnv1a64(text.as_bytes())),
            samples: victim.samples + 1,
            file: victim.file.clone(),
        };
        let err = read_shard(&dir, &entry).unwrap_err();
        assert!(err.to_string().starts_with(&format!("{}:2:", entry.file)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_totals_are_cross_checked() {
        let ds = random_dataset(6, 15);
        let dir = temp_dir("totals");
        let mut manifest =
            ds.to_shards(&dir, ShardSpec::MaxSamples(5), &ExecConfig::new()).unwrap();
        manifest.total_samples += 1;
        let text = serde_json::to_string_pretty(&manifest).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), text).unwrap();
        let err = PyraNetDataset::from_shards(&dir, &ExecConfig::new()).unwrap_err();
        assert!(err.to_string().contains("total_samples"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsupported_format_version_is_rejected() {
        let ds = random_dataset(7, 6);
        let dir = temp_dir("version");
        let mut manifest = ds.to_shards(&dir, ShardSpec::PerLayer, &ExecConfig::new()).unwrap();
        manifest.format_version = 99;
        let text = serde_json::to_string_pretty(&manifest).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), text).unwrap();
        let err = PyraNetDataset::from_shards(&dir, &ExecConfig::new()).unwrap_err();
        assert!(err.to_string().contains("format_version"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_stream_yields_manifest_order() {
        let ds = random_dataset(8, 33);
        let dir = temp_dir("stream");
        let manifest = ds.to_shards(&dir, ShardSpec::MaxSamples(10), &ExecConfig::new()).unwrap();
        let mut stream = ShardStream::open(&dir).unwrap();
        assert_eq!(stream.manifest(), &manifest);
        let mut streamed = PyraNetDataset::new();
        let mut shards = 0;
        while let Some(shard) = stream.next_shard() {
            streamed.extend(shard.unwrap());
            shards += 1;
        }
        assert_eq!(shards, manifest.shards.len());
        assert_eq!(streamed, ds);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dataset_accepts_file_dir_and_manifest_path() {
        let ds = random_dataset(9, 18);
        let dir = temp_dir("load");
        let exec = ExecConfig::new();
        ds.to_shards(&dir, ShardSpec::MaxSamples(6), &exec).unwrap();
        assert_eq!(load_dataset(&dir, &exec).unwrap(), ds);
        assert_eq!(load_dataset(&dir.join(MANIFEST_FILE), &exec).unwrap(), ds);
        let file = dir.join("flat.jsonl");
        let mut buf = Vec::new();
        ds.to_jsonl(&mut buf).unwrap();
        std::fs::write(&file, &buf).unwrap();
        assert_eq!(load_dataset(&file, &exec).unwrap(), ds);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dataset_names_file_and_line_on_malformed_input() {
        let dir = temp_dir("load-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("dataset.jsonl");
        let ds = random_dataset(10, 3);
        let mut buf = Vec::new();
        ds.to_jsonl(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        let second_line_start = text.find('\n').unwrap() + 1;
        text.insert_str(second_line_start, "not json\n");
        std::fs::write(&file, &text).unwrap();
        let err = load_dataset(&file, &ExecConfig::new()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("dataset.jsonl:2:"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Fixed-size export round-trips bit-identically at 1/2/8 threads,
        /// and the bytes on disk never depend on the thread count.
        #[test]
        fn shard_round_trip_is_bit_identical_at_any_thread_count(
            seed in 0u64..5_000,
            n in 0usize..90,
            shard_size in 1usize..32,
        ) {
            let ds = random_dataset(seed, n);
            let dir = temp_dir("prop-rt");
            let mut reference: Option<Vec<(String, Vec<u8>)>> = None;
            for threads in [1usize, 2, 8] {
                let exec = ExecConfig::new().threads(threads);
                let manifest =
                    ds.to_shards(&dir, ShardSpec::MaxSamples(shard_size), &exec).expect("export");
                let files: Vec<(String, Vec<u8>)> = manifest
                    .shards
                    .iter()
                    .map(|s| (s.file.clone(), std::fs::read(dir.join(&s.file)).expect("read")))
                    .collect();
                match &reference {
                    None => reference = Some(files),
                    Some(r) => prop_assert_eq!(r, &files, "threads={}", threads),
                }
                let back = PyraNetDataset::from_shards(&dir, &exec).expect("import");
                prop_assert_eq!(&back, &ds, "threads={}", threads);
            }
            std::fs::remove_dir_all(&dir).ok();
        }

        /// A single flipped byte in any shard is rejected, and the error
        /// names the corrupted file.
        #[test]
        fn flipped_byte_is_rejected_with_file_named(
            seed in 0u64..5_000,
            n in 1usize..60,
            victim_seed in 0usize..1_000,
        ) {
            let ds = random_dataset(seed, n);
            let dir = temp_dir("prop-flip");
            let manifest =
                ds.to_shards(&dir, ShardSpec::MaxSamples(9), &ExecConfig::new()).expect("export");
            let victim = &manifest.shards[victim_seed % manifest.shards.len()];
            let path = dir.join(&victim.file);
            let mut bytes = std::fs::read(&path).expect("read shard");
            let pos = victim_seed % bytes.len();
            bytes[pos] ^= 0x01;
            std::fs::write(&path, &bytes).expect("rewrite shard");
            let err = PyraNetDataset::from_shards(&dir, &ExecConfig::new())
                .expect_err("corruption must be detected");
            prop_assert!(
                err.to_string().contains(&victim.file),
                "error `{}` does not name `{}`", err, victim.file
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
