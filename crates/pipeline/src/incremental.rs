//! Incremental curation: per-stage artifact caching over `pyranet-cache`.
//!
//! Every per-sample stage verdict is a pure function of the sample's
//! *content* and the stage's *configuration*, so it can be stored in a
//! content-addressed store and reused across builds — an edited corpus
//! re-pays only for the samples that changed. This module owns the glue:
//! the stage names/versions, the config fingerprints (which knob feeds
//! which stage), the serialized artifact shapes, and the cached variants
//! of each stage's sweep.
//!
//! Invalidation rules (each knob retires exactly the stages it feeds):
//!
//! | stage        | artifact                      | fingerprint knobs        |
//! |--------------|-------------------------------|--------------------------|
//! | `broken`     | rejected: bool                | — (version only)         |
//! | `no_module`  | rejected: bool                | — (version only)         |
//! | `dedup_sig`  | shingle set + MinHash sig     | num_hashes, bands        |
//! | `dedup_join` | *(none — always re-runs)*     | jaccard threshold        |
//! | `syntax_rank`| syntax/sim/keep verdict       | rank-judge version, sim  |
//!
//! The jaccard threshold deliberately does **not** fingerprint
//! `dedup_sig`: signatures are threshold-independent, and the only
//! threshold consumer — the cross-sample LSH join — re-runs on every
//! build anyway (a sample's duplicate verdict depends on every *other*
//! sample, so it cannot be cached per sample). Changing the threshold
//! therefore re-runs only the join, on cached signatures.
//!
//! Determinism: every lookup is keyed by content, never by index or
//! thread, and each cached sweep fans out through the same
//! order-preserving `par_map` as the uncached one — so cached, uncached,
//! partially-cached, and any-thread-count runs all produce byte-identical
//! curated output. The pipeline's funnel/`StageTimings` buckets are
//! likewise preserved: each stage consults only its own artifacts over
//! exactly the samples the uncached stage would see.

use crate::dedup::{self, BANDS, NUM_HASHES};
use crate::layers::Layer;
use crate::rank::{Rank, RANK_JUDGE_VERSION};
use pyranet_cache::{content_hash, ArtifactStore, Fingerprint, Lookup, StageKey, StageProvenance};
use pyranet_corpus::RawSample;
use pyranet_exec::{par_map, ExecConfig};
use pyranet_verilog::metrics::ComplexityTier;
use pyranet_verilog::SimMode;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Artifact-format versions, one per stage. Bump a stage's version when
/// its artifact shape or verdict semantics change; old artifacts become
/// unreachable (different fingerprint) instead of being misread.
const BROKEN_VERSION: u32 = 1;
const NO_MODULE_VERSION: u32 = 1;
const DEDUP_SIG_VERSION: u32 = 1;
const DEDUP_JOIN_VERSION: u32 = 1;
const SYNTAX_RANK_VERSION: u32 = 1;

/// Stage names — the first component of every [`StageKey`].
pub const STAGE_BROKEN: &str = "broken";
pub const STAGE_NO_MODULE: &str = "no_module";
pub const STAGE_DEDUP_SIG: &str = "dedup_sig";
pub const STAGE_DEDUP_JOIN: &str = "dedup_join";
pub const STAGE_SYNTAX_RANK: &str = "syntax_rank";

/// A cached filter verdict (stages 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterArtifact {
    pub rejected: bool,
}

/// A cached dedup signature: the sample's shingle set (sorted, so the
/// stored bytes are stable across runs) plus its MinHash signature. The
/// shingle set rides along because the LSH join verifies candidate pairs
/// with *exact* Jaccard, not the signature estimate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DedupSigArtifact {
    pub shingles: Vec<u64>,
    pub sig: Vec<u64>,
}

/// A cached stage-4 verdict: rejected by the syntax check, rejected by
/// the opt-in sim check, or kept with the derived quality labels. The
/// kept variant stores only content-derived fields — id, source, and
/// description come from the live `RawSample` at reuse time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CurationArtifact {
    Syntax,
    Sim,
    Keep { rank: Rank, tier: ComplexityTier, layer: Layer, dependency_issue: bool },
}

/// The per-stage config fingerprints for one pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageFingerprints {
    pub broken: u64,
    pub no_module: u64,
    pub dedup_sig: u64,
    pub dedup_join: u64,
    pub syntax_rank: u64,
}

impl StageFingerprints {
    /// Derives the fingerprints from the pipeline's knobs.
    pub fn derive(jaccard_threshold: f64, sim_check: Option<SimMode>) -> StageFingerprints {
        StageFingerprints {
            broken: Fingerprint::stage(STAGE_BROKEN, BROKEN_VERSION).finish(),
            no_module: Fingerprint::stage(STAGE_NO_MODULE, NO_MODULE_VERSION).finish(),
            dedup_sig: Fingerprint::stage(STAGE_DEDUP_SIG, DEDUP_SIG_VERSION)
                .knob("num_hashes", &NUM_HASHES.to_string())
                .knob("bands", &BANDS.to_string())
                .finish(),
            dedup_join: Fingerprint::stage(STAGE_DEDUP_JOIN, DEDUP_JOIN_VERSION)
                .knob_f64("jaccard", jaccard_threshold)
                .finish(),
            syntax_rank: Fingerprint::stage(STAGE_SYNTAX_RANK, SYNTAX_RANK_VERSION)
                .knob("rank_judge", &RANK_JUDGE_VERSION.to_string())
                .knob("sim", sim_knob(sim_check))
                .finish(),
        }
    }

    /// The provenance records for this configuration, in stage order —
    /// written into the cache root's manifest and embedded in the shard
    /// `manifest.json`.
    pub fn provenance(&self) -> Vec<StageProvenance> {
        vec![
            StageProvenance::new(STAGE_BROKEN, BROKEN_VERSION, self.broken),
            StageProvenance::new(STAGE_NO_MODULE, NO_MODULE_VERSION, self.no_module),
            StageProvenance::new(STAGE_DEDUP_SIG, DEDUP_SIG_VERSION, self.dedup_sig),
            StageProvenance::new(STAGE_DEDUP_JOIN, DEDUP_JOIN_VERSION, self.dedup_join),
            StageProvenance::new(STAGE_SYNTAX_RANK, SYNTAX_RANK_VERSION, self.syntax_rank),
        ]
    }
}

/// The sim-mode knob value. The backend choice lands in the fingerprint
/// verbatim: the two backends are verdict-equivalent today, but keying
/// them separately means a behavioural divergence can never resurface a
/// stale verdict from the other backend.
fn sim_knob(sim_check: Option<SimMode>) -> &'static str {
    match sim_check {
        None => "off",
        Some(SimMode::Compiled) => "compiled",
        Some(SimMode::Reference) => "reference",
    }
}

/// A cached run of one filter stage: per-sample verdict lookups fan out
/// through `par_map` (content-keyed, so order-independent), misses compute
/// the predicate and publish the verdict. Returns survivors (in input
/// order) and the reject count — the same contract as the uncached
/// filters.
pub(crate) fn filter_stage_cached(
    store: &ArtifactStore,
    stage: &'static str,
    fingerprint: u64,
    pool: Vec<RawSample>,
    exec: &ExecConfig,
    is_rejected: fn(&str) -> bool,
) -> (Vec<RawSample>, usize) {
    let verdicts: Vec<(RawSample, bool)> = par_map(exec, pool, move |s| {
        let key = StageKey::new(stage, content_hash(&s.source), fingerprint);
        let rejected = match store.get::<FilterArtifact>(&key) {
            Lookup::Hit(v) => v.rejected,
            Lookup::Miss | Lookup::Invalid => {
                let rejected = is_rejected(&s.source);
                // Advisory write: a full disk must not fail the build.
                store.put(&key, &FilterArtifact { rejected }).ok();
                rejected
            }
        };
        (s, rejected)
    });
    let before = verdicts.len();
    let alive: Vec<RawSample> =
        verdicts.into_iter().filter(|(_, rejected)| !*rejected).map(|(s, _)| s).collect();
    let rejected = before - alive.len();
    (alive, rejected)
}

/// Cached dedup: per-sample shingle sets and MinHash signatures come from
/// the store (or are computed and published), then the cross-sample LSH
/// join runs as always — on every build — over the assembled signatures.
pub(crate) fn dedup_cached(
    store: &ArtifactStore,
    fingerprint: u64,
    pool: Vec<RawSample>,
    threshold: f64,
    exec: &ExecConfig,
) -> Vec<RawSample> {
    let sources: Vec<&str> = pool.iter().map(|s| s.source.as_str()).collect();
    let per_sample: Vec<(HashSet<u64>, [u64; NUM_HASHES])> = par_map(exec, sources, move |src| {
        let key = StageKey::new(STAGE_DEDUP_SIG, content_hash(src), fingerprint);
        if let Lookup::Hit(art) = store.get::<DedupSigArtifact>(&key) {
            // A malformed signature length means the artifact predates a
            // parameter change that should have bumped the version — fall
            // through and recompute rather than trust it.
            if let Ok(sig) = <[u64; NUM_HASHES]>::try_from(art.sig.as_slice()) {
                return (art.shingles.into_iter().collect(), sig);
            }
        }
        let set = dedup::shingles(src);
        let sig = dedup::minhash(&set);
        let mut sorted: Vec<u64> = set.iter().copied().collect();
        sorted.sort_unstable();
        store.put(&key, &DedupSigArtifact { shingles: sorted, sig: sig.to_vec() }).ok();
        (set, sig)
    });
    let (sets, sigs): (Vec<HashSet<u64>>, Vec<[u64; NUM_HASHES]>) = per_sample.into_iter().unzip();
    let dead = dedup::lsh_sweep(&sets, &sigs, threshold);
    pool.into_iter().zip(dead).filter(|(_, d)| !*d).map(|(s, _)| s).collect()
}

/// Assembles a curated sample from a cached keep-verdict plus the live
/// raw sample it was derived from.
pub(crate) fn curated_from_artifact(
    s: RawSample,
    rank: Rank,
    tier: ComplexityTier,
    layer: Layer,
    dependency_issue: bool,
) -> crate::dataset::CuratedSample {
    crate::dataset::CuratedSample {
        id: s.id,
        source: s.source,
        description: s.description,
        rank,
        tier,
        layer,
        dependency_issue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_isolate_their_knobs() {
        let base = StageFingerprints::derive(0.85, None);
        let threshold = StageFingerprints::derive(0.9, None);
        // The jaccard threshold feeds only the (uncacheable) join stage.
        assert_eq!(base.broken, threshold.broken);
        assert_eq!(base.no_module, threshold.no_module);
        assert_eq!(base.dedup_sig, threshold.dedup_sig);
        assert_eq!(base.syntax_rank, threshold.syntax_rank);
        assert_ne!(base.dedup_join, threshold.dedup_join);
        // The sim mode feeds only the syntax/rank/sim stage.
        let sim = StageFingerprints::derive(0.85, Some(SimMode::Compiled));
        assert_eq!(base.dedup_sig, sim.dedup_sig);
        assert_eq!(base.dedup_join, sim.dedup_join);
        assert_ne!(base.syntax_rank, sim.syntax_rank);
        // The two sim backends are keyed apart.
        let reference = StageFingerprints::derive(0.85, Some(SimMode::Reference));
        assert_ne!(sim.syntax_rank, reference.syntax_rank);
    }

    #[test]
    fn provenance_lists_every_stage_once() {
        let prov = StageFingerprints::derive(0.85, None).provenance();
        let names: Vec<&str> = prov.iter().map(|p| p.stage.as_str()).collect();
        assert_eq!(
            names,
            vec![
                STAGE_BROKEN,
                STAGE_NO_MODULE,
                STAGE_DEDUP_SIG,
                STAGE_DEDUP_JOIN,
                STAGE_SYNTAX_RANK
            ]
        );
    }

    #[test]
    fn curation_artifact_round_trips_through_json() {
        for art in [
            CurationArtifact::Syntax,
            CurationArtifact::Sim,
            CurationArtifact::Keep {
                rank: Rank::new(17),
                tier: ComplexityTier::Advanced,
                layer: Layer::L2,
                dependency_issue: false,
            },
        ] {
            let text = serde_json::to_string(&art).unwrap();
            let back: CurationArtifact = serde_json::from_str(&text).unwrap();
            assert_eq!(back, art);
        }
    }
}
