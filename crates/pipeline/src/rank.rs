//! The 0–20 ranking judge (paper §III-A.4, Fig. 3).
//!
//! The paper prompts GPT-4o-mini: *"Act as a teacher and rank the quality
//! of this Verilog code in scale of 0 to 20, with 0 being syntactically
//! incorrect and 20 being a good Verilog code in terms of efficiency and
//! coding style."* Our deterministic judge scores the same two axes from
//! the lint report (style) and structural metrics (efficiency): rank 20
//! requires a defect-free file, and each weighted defect pulls the score
//! down. [`render_prompt`] reproduces the Fig. 3 prompt text so the bench
//! binary can regenerate the figure.

use pyranet_verilog::ast::Module;
use pyranet_verilog::lint::lint_module;
use serde::{Deserialize, Serialize};

/// A quality rank on the paper's 0–20 scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rank(u8);

impl Rank {
    /// Creates a rank, clamping to 0–20.
    pub fn new(value: u8) -> Rank {
        Rank(value.min(20))
    }

    /// The numeric value (0–20).
    pub fn value(self) -> u8 {
        self.0
    }
}

impl std::fmt::Display for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} out of 20", self.0)
    }
}

/// How many rank points one unit of lint penalty costs.
const PENALTY_SCALE: f64 = 2.5;

/// Version of the deterministic ranking judge. Participates in the
/// incremental cache's `syntax_rank` config fingerprint: bump it whenever
/// [`rank_sample`]'s scoring (lint rules, penalty weights, clamping)
/// changes behaviour, so cached rank verdicts from the old judge are
/// retired instead of silently reused.
pub const RANK_JUDGE_VERSION: u32 = 1;

/// Ranks a parsed module with its source text.
///
/// Compilable code never ranks 0 (the paper reserves 0 for syntactically
/// incorrect code); a defect-free file ranks 20.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use pyranet_pipeline::rank_sample;
/// let src = "// Half adder.\nmodule half_adder(input a, input b, output sum, output cout);\n  \
///            assign sum = a ^ b;\n  assign cout = a & b;\nendmodule\n";
/// let m = pyranet_verilog::parse_module(src)?;
/// assert_eq!(rank_sample(&m, src).value(), 20);
/// # Ok(())
/// # }
/// ```
pub fn rank_sample(module: &Module, source: &str) -> Rank {
    let report = lint_module(module, source);
    let penalty = report.penalty() * PENALTY_SCALE;
    let score = (20.0 - penalty).round().clamp(1.0, 20.0);
    Rank(score as u8)
}

/// Renders the Fig. 3 ranking prompt for a code sample.
pub fn render_prompt(source: &str) -> String {
    format!(
        "Act as a teacher and rank the quality of this Verilog code in scale of 0 to 20, \
         with 0 being syntactically incorrect and 20 being a good Verilog code in terms of \
         efficiency and coding style:\n\n{source}\n\nJust give me the score only."
    )
}

/// Renders the Fig. 3 response for a rank.
pub fn render_response(rank: Rank) -> String {
    format!("Score: {rank}.")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_verilog::parse_module;

    fn rank_of(src: &str) -> u8 {
        rank_sample(&parse_module(src).unwrap(), src).value()
    }

    #[test]
    fn fig3_half_adder_scores_20() {
        // The paper's Fig. 3 example scores 20/20; our judge agrees on the
        // equivalent clean sample.
        let src = "// Half adder.\nmodule half_adder(\n  input a,\n  input b,\n  output sum,\n  output cout\n);\n  assign sum = a ^ b;\n  assign cout = a & b;\nendmodule\n";
        assert_eq!(rank_of(src), 20);
    }

    #[test]
    fn sloppy_code_ranks_lower() {
        let sloppy = "module BadThing(input a, output reg q);\nalways @(a) q <= a;\nendmodule";
        assert!(rank_of(sloppy) <= 16, "got {}", rank_of(sloppy));
    }

    #[test]
    fn compilable_code_never_ranks_zero() {
        // maximally awful but parseable
        let awful = "module X(input a, output reg q, output dead);\nreg unused1;\nreg unused2;\nreg unused3;\nreg unused4;\nreg unused5;\nreg unused6;\nreg unused7;\nalways @(a) q <= a;\nendmodule";
        assert!(rank_of(awful) >= 1);
    }

    #[test]
    fn rank_clamps() {
        assert_eq!(Rank::new(200).value(), 20);
        assert_eq!(Rank::new(0).value(), 0);
    }

    #[test]
    fn rank_displays_like_fig3() {
        assert_eq!(Rank::new(20).to_string(), "20 out of 20");
        assert_eq!(render_response(Rank::new(20)), "Score: 20 out of 20.");
    }

    #[test]
    fn prompt_contains_source_and_instructions() {
        let p = render_prompt("module m; endmodule");
        assert!(p.contains("Act as a teacher"));
        assert!(p.contains("module m; endmodule"));
        assert!(p.ends_with("Just give me the score only."));
    }

    #[test]
    fn ranks_are_ordered_by_quality_spectrum() {
        let pristine = "// Counter.\nmodule counter(input clk, input rst, output reg [3:0] q);\n  // increments every cycle\n  always @(posedge clk) begin\n    if (rst) q <= 4'd0;\n    else q <= q + 4'd1;\n  end\nendmodule\n";
        let mild = "module counter(input clk, input rst, output reg [3:0] q); \nalways @(clk or rst) begin\nif (rst) q = 0;\nelse q = q + 1;\nend\nendmodule\n";
        let bad = "\tmodule Counter(input clk, input rst, output reg [3:0] q);\t\nalways @(clk or rst) begin \nif (rst) q <= 0;\nelse q <= q + 1;\nend\nendmodule\n";
        let rp = rank_of(pristine);
        let rm = rank_of(mild);
        let rb = rank_of(bad);
        assert!(rp > rm, "pristine {rp} vs mild {rm}");
        assert!(rm > rb, "mild {rm} vs bad {rb}");
    }
}
