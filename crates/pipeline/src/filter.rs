//! Cheap early filters (paper §III-A.2, first two bullets).

use pyranet_corpus::RawSample;

/// True when a file would fail the "empty/broken" filter: empty,
/// whitespace-only, or containing control/non-ASCII bytes our lexer can
/// never tokenize (the Python-encoding-error analogue).
pub fn is_broken(source: &str) -> bool {
    if source.trim().is_empty() {
        return true;
    }
    source.bytes().any(|b| (b < 0x20 && b != b'\n' && b != b'\r' && b != b'\t') || b >= 0x80)
}

/// True when the file has no `module` declaration at all.
pub fn has_module_decl(source: &str) -> bool {
    // Comments are stripped first so a "// module-free file" note does not
    // count; then a token-boundary check finds `module` as a word.
    source.lines().any(|line| {
        let code = line.split("//").next().unwrap_or("");
        code.split(|c: char| !c.is_ascii_alphanumeric() && c != '_' && c != '$')
            .any(|w| w == "module")
    })
}

/// Stage 1: removes empty/broken files. Returns survivors and reject count.
pub fn filter_broken(pool: Vec<RawSample>) -> (Vec<RawSample>, usize) {
    let before = pool.len();
    let alive: Vec<RawSample> = pool.into_iter().filter(|s| !is_broken(&s.source)).collect();
    let rejected = before - alive.len();
    (alive, rejected)
}

/// Stage 2: removes files without a module declaration.
pub fn filter_no_module(pool: Vec<RawSample>) -> (Vec<RawSample>, usize) {
    let before = pool.len();
    let alive: Vec<RawSample> = pool.into_iter().filter(|s| has_module_decl(&s.source)).collect();
    let rejected = before - alive.len();
    (alive, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_corpus::{Origin, TruthLabel};

    fn raw(id: u64, src: &str) -> RawSample {
        RawSample::new(id, src, "", Origin::Scraped, TruthLabel::Clean)
    }

    #[test]
    fn empty_is_broken() {
        assert!(is_broken(""));
        assert!(is_broken("   \n\t\n"));
    }

    #[test]
    fn binary_is_broken() {
        assert!(is_broken("\u{1}\u{2} blob"));
        assert!(is_broken("módulo")); // non-ASCII
    }

    #[test]
    fn normal_text_is_not_broken() {
        assert!(!is_broken("module m; endmodule"));
        assert!(!is_broken("// comment\nmodule m; endmodule\n"));
    }

    #[test]
    fn module_decl_detection() {
        assert!(has_module_decl("module m; endmodule"));
        assert!(has_module_decl("  module   m();"));
        assert!(!has_module_decl("// module-free file"));
        assert!(!has_module_decl("submodule thing"));
        assert!(!has_module_decl(""));
    }

    #[test]
    fn filters_count_correctly() {
        let pool = vec![raw(0, ""), raw(1, "module a; endmodule"), raw(2, "just text")];
        let (alive, rejected) = filter_broken(pool);
        assert_eq!(rejected, 1);
        let (alive, rejected) = filter_no_module(alive);
        assert_eq!(rejected, 1);
        assert_eq!(alive.len(), 1);
        assert_eq!(alive[0].id, 1);
    }
}
