//! Funnel statistics (paper §III-A.5: 2.4 M collected → 692,238 curated).

use serde::{Deserialize, Serialize};

/// Per-stage counts for one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Funnel {
    /// Raw pool size.
    pub collected: usize,
    /// Rejected by the empty/broken filter.
    pub rejected_broken: usize,
    /// Rejected for lacking a module declaration.
    pub rejected_no_module: usize,
    /// Removed as near-duplicates.
    pub rejected_duplicates: usize,
    /// Rejected by the syntax check.
    pub rejected_syntax: usize,
    /// Rejected by the opt-in simulation check (`Pipeline::sim_check`);
    /// always 0 when the stage is disabled (the default).
    pub rejected_sim: usize,
    /// Survivors (curated dataset size).
    pub curated: usize,
}

impl Funnel {
    /// Conservation invariant: every collected sample is accounted for by
    /// exactly one rejection stage or by survival. `Pipeline::run` asserts
    /// this at the end of every run.
    pub fn is_consistent(&self) -> bool {
        self.collected
            == self.rejected_broken
                + self.rejected_no_module
                + self.rejected_duplicates
                + self.rejected_syntax
                + self.rejected_sim
                + self.curated
    }

    /// Survival rate, curated / collected.
    pub fn survival_rate(&self) -> f64 {
        if self.collected == 0 {
            0.0
        } else {
            self.curated as f64 / self.collected as f64
        }
    }

    /// Renders the funnel as aligned text rows (used by the `funnel` bench
    /// binary and the CLI's `build-dataset`/`stats` output). Every
    /// rejection stage is always listed — including `sim check`, which is
    /// simply 0 when the opt-in stage is disabled — so consumers diffing
    /// two renders compare the same rows.
    pub fn render(&self) -> String {
        let sim_row = format!("- sim check          {:>10}\n", self.rejected_sim);
        format!(
            "collected            {:>10}\n\
             - empty/broken       {:>10}\n\
             - no module decl     {:>10}\n\
             - duplicates         {:>10}\n\
             - syntax errors      {:>10}\n\
             {sim_row}\
             = curated            {:>10}  ({:.1}% survival)",
            self.collected,
            self.rejected_broken,
            self.rejected_no_module,
            self.rejected_duplicates,
            self.rejected_syntax,
            self.curated,
            self.survival_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_counts_every_sample_once() {
        let f = Funnel {
            collected: 100,
            rejected_broken: 10,
            rejected_no_module: 20,
            rejected_duplicates: 30,
            rejected_syntax: 9,
            rejected_sim: 2,
            curated: 29,
        };
        assert!(f.is_consistent());
        assert!(Funnel::default().is_consistent(), "empty funnel is trivially consistent");
        let lossy = Funnel { curated: 28, ..f };
        assert!(!lossy.is_consistent(), "a dropped sample must be detected");
    }

    #[test]
    fn survival_rate_basics() {
        let f = Funnel { collected: 100, curated: 29, ..Funnel::default() };
        assert!((f.survival_rate() - 0.29).abs() < 1e-12);
        assert_eq!(Funnel::default().survival_rate(), 0.0);
    }

    #[test]
    fn render_contains_all_rows() {
        let f = Funnel {
            collected: 2_400_000,
            rejected_broken: 500_000,
            rejected_no_module: 100_000,
            rejected_duplicates: 800_000,
            rejected_syntax: 307_762,
            rejected_sim: 0,
            curated: 692_238,
        };
        let r = f.render();
        assert!(r.contains("2400000"));
        assert!(r.contains("692238"));
        assert!(r.contains("28.8% survival"));
        assert!(r.contains("sim check"), "sim row always renders (0 when disabled)");
        let with_sim = Funnel { rejected_sim: 5, curated: 692_233, ..f };
        assert!(with_sim.render().contains("sim check"));
        assert!(with_sim.render().lines().any(|l| l.contains("sim check") && l.contains('5')));
    }
}
