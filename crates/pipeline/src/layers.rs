//! The six PyraNet layers (paper §III-A.5) and their loss weights
//! (§III-B.1, Fig. 1-b).

use crate::rank::Rank;
use serde::{Deserialize, Serialize};

/// One of the six dataset layers. `L1` is the apex (rank 20), `L6` the base
/// (dependency issues or rank 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Rank exactly 20 — the highest tier.
    L1,
    /// Ranks 19–15.
    L2,
    /// Ranks 14–10.
    L3,
    /// Ranks 9–5.
    L4,
    /// Ranks 4–1.
    L5,
    /// Dependency issues or rank 0.
    L6,
}

impl Layer {
    /// All layers, apex first (the order fine-tuning visits them).
    pub const ALL: [Layer; 6] = [Layer::L1, Layer::L2, Layer::L3, Layer::L4, Layer::L5, Layer::L6];

    /// Assigns a layer from a rank and the dependency-issue flag, following
    /// the paper's bands exactly.
    pub fn assign(rank: Rank, dependency_issue: bool) -> Layer {
        if dependency_issue {
            return Layer::L6;
        }
        match rank.value() {
            20 => Layer::L1,
            15..=19 => Layer::L2,
            10..=14 => Layer::L3,
            5..=9 => Layer::L4,
            1..=4 => Layer::L5,
            _ => Layer::L6,
        }
    }

    /// The fine-tuning loss weight for this layer: 1.0, 0.8, 0.6, 0.4, 0.2,
    /// 0.1 from apex to base (paper Fig. 1-b).
    pub fn loss_weight(self) -> f64 {
        match self {
            Layer::L1 => 1.0,
            Layer::L2 => 0.8,
            Layer::L3 => 0.6,
            Layer::L4 => 0.4,
            Layer::L5 => 0.2,
            Layer::L6 => 0.1,
        }
    }

    /// 1-based layer index.
    pub fn index(self) -> usize {
        match self {
            Layer::L1 => 1,
            Layer::L2 => 2,
            Layer::L3 => 3,
            Layer::L4 => 4,
            Layer::L5 => 5,
            Layer::L6 => 6,
        }
    }

    /// Inclusive rank band for display (`None` for L6).
    pub fn rank_band(self) -> Option<(u8, u8)> {
        match self {
            Layer::L1 => Some((20, 20)),
            Layer::L2 => Some((15, 19)),
            Layer::L3 => Some((10, 14)),
            Layer::L4 => Some((5, 9)),
            Layer::L5 => Some((1, 4)),
            Layer::L6 => None,
        }
    }
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Layer {}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_a_partition_of_ranks() {
        // every (rank, dep) combination maps to exactly one layer, and the
        // bands match the paper
        for r in 0..=20u8 {
            let layer = Layer::assign(Rank::new(r), false);
            let expected = match r {
                20 => Layer::L1,
                15..=19 => Layer::L2,
                10..=14 => Layer::L3,
                5..=9 => Layer::L4,
                1..=4 => Layer::L5,
                _ => Layer::L6,
            };
            assert_eq!(layer, expected, "rank {r}");
        }
    }

    #[test]
    fn dependency_issue_forces_l6() {
        for r in 0..=20u8 {
            assert_eq!(Layer::assign(Rank::new(r), true), Layer::L6);
        }
    }

    #[test]
    fn loss_weights_match_paper() {
        let w: Vec<f64> = Layer::ALL.iter().map(|l| l.loss_weight()).collect();
        assert_eq!(w, vec![1.0, 0.8, 0.6, 0.4, 0.2, 0.1]);
    }

    #[test]
    fn weights_strictly_decrease() {
        for pair in Layer::ALL.windows(2) {
            assert!(pair[0].loss_weight() > pair[1].loss_weight());
        }
    }

    #[test]
    fn layers_order_apex_first() {
        assert!(Layer::L1 < Layer::L6);
        assert_eq!(Layer::L1.index(), 1);
        assert_eq!(Layer::L6.index(), 6);
    }

    #[test]
    fn rank_bands_cover_1_to_20() {
        let mut covered = [false; 21];
        for l in Layer::ALL {
            if let Some((lo, hi)) = l.rank_band() {
                for r in lo..=hi {
                    assert!(!covered[r as usize], "rank {r} covered twice");
                    covered[r as usize] = true;
                }
            }
        }
        for (r, &c) in covered.iter().enumerate().skip(1) {
            assert!(c, "rank {r} uncovered");
        }
    }

    #[test]
    fn display_form() {
        assert_eq!(Layer::L3.to_string(), "Layer 3");
    }
}
