//! Jaccard-similarity deduplication (paper §III-A.2, third bullet),
//! accelerated with MinHash signatures and LSH banding.
//!
//! The paper: "We employed the Jaccard similarity algorithm to perform
//! deduplication. This method computes the similarity between sets of
//! tokens derived from the code samples … Code pairs with a Jaccard
//! similarity score above a predefined threshold were identified as
//! duplicates and subsequently removed."
//!
//! Exact all-pairs Jaccard is quadratic; MinHash + banding gives the same
//! outcome in near-linear time for corpus-scale pools. Candidate pairs from
//! LSH are *verified* with the exact Jaccard score, so the threshold
//! semantics match the naive algorithm (up to MinHash recall, covered by
//! the banding parameters and tested against brute force below).

use pyranet_corpus::RawSample;
use pyranet_exec::{par_map, ExecConfig};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// Number of MinHash permutations.
pub(crate) const NUM_HASHES: usize = 64;
/// LSH bands (NUM_HASHES / BANDS rows per band).
pub(crate) const BANDS: usize = 16;

/// Tokenizes a source into the shingle set used for Jaccard similarity.
///
/// Tokens are word-level (identifiers, numbers, operators collapse to
/// single chars); 3-gram shingles make the measure order-sensitive enough
/// that different circuits with the same vocabulary don't collide.
///
/// Tokenization is char-aware: a multibyte character (a `// café`
/// comment, a CJK identifier in a scraped file) is one single-char token.
/// The earlier byte-indexed slicing (`&source[i..i + 1]`) panicked on any
/// non-char-boundary index, taking the whole pipeline down with it. For
/// pure-ASCII sources the token stream is byte-identical to the old one,
/// so existing dedup outcomes (and the export digest pins) are unchanged.
pub fn shingles(source: &str) -> HashSet<u64> {
    let mut tokens: Vec<&str> = Vec::new();
    let is_word = |c: char| c.is_ascii_alphanumeric() || c == '_' || c == '$';
    let mut chars = source.char_indices().peekable();
    while let Some((start, c)) = chars.next() {
        if is_word(c) {
            let mut end = start + c.len_utf8();
            while let Some(&(j, cj)) = chars.peek() {
                if !is_word(cj) {
                    break;
                }
                end = j + cj.len_utf8();
                chars.next();
            }
            tokens.push(&source[start..end]);
        } else if !c.is_whitespace() {
            tokens.push(&source[start..start + c.len_utf8()]);
        }
    }
    let mut set = HashSet::with_capacity(tokens.len());
    for w in tokens.windows(3) {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        w.hash(&mut h);
        set.insert(h.finish());
    }
    if set.is_empty() && !tokens.is_empty() {
        // very short files: fall back to single-token shingles
        for t in tokens {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            t.hash(&mut h);
            set.insert(h.finish());
        }
    }
    set
}

/// Exact Jaccard similarity between two shingle sets.
pub fn jaccard(a: &HashSet<u64>, b: &HashSet<u64>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Splitmix-style hash mixing for the MinHash permutations.
fn mix(mut x: u64, seed: u64) -> u64 {
    x = x.wrapping_add(seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// MinHash signature of a shingle set.
pub fn minhash(shingles: &HashSet<u64>) -> [u64; NUM_HASHES] {
    let mut sig = [u64::MAX; NUM_HASHES];
    for &s in shingles {
        for (k, slot) in sig.iter_mut().enumerate() {
            let h = mix(s, k as u64);
            if h < *slot {
                *slot = h;
            }
        }
    }
    sig
}

/// Removes near-duplicates, keeping the earliest (lowest-index) member of
/// each duplicate cluster. Pairs flagged by LSH banding are verified with
/// exact Jaccard before removal.
pub fn dedup(pool: Vec<RawSample>, threshold: f64) -> Vec<RawSample> {
    dedup_with(pool, threshold, &ExecConfig::new())
}

/// [`dedup`] with an explicit executor configuration.
///
/// Shingling and MinHash signature computation — the dominant cost — are
/// per-sample pure functions and run through [`par_map`]; the LSH banding
/// and verification sweep stays sequential, preserving the
/// earliest-representative-wins semantics exactly. The survivor set is
/// therefore identical at any thread count.
pub fn dedup_with(pool: Vec<RawSample>, threshold: f64, exec: &ExecConfig) -> Vec<RawSample> {
    let sources: Vec<&str> = pool.iter().map(|s| s.source.as_str()).collect();
    let per_sample: Vec<(HashSet<u64>, [u64; NUM_HASHES])> = par_map(exec, sources, |src| {
        let set = shingles(src);
        let sig = minhash(&set);
        (set, sig)
    });
    let (sets, sigs): (Vec<HashSet<u64>>, Vec<[u64; NUM_HASHES]>) = per_sample.into_iter().unzip();
    let dead = lsh_sweep(&sets, &sigs, threshold);
    pool.into_iter().zip(dead).filter(|(_, d)| !*d).map(|(s, _)| s).collect()
}

/// The cross-sample LSH join: bands the signatures, verifies candidate
/// pairs with exact Jaccard, and returns which samples die. Shared by the
/// direct path above and the incremental path (which feeds it cached
/// signatures) — a sample's duplicate verdict depends on every *other*
/// sample, so this sweep re-runs on every build regardless of caching.
pub(crate) fn lsh_sweep(
    sets: &[HashSet<u64>],
    sigs: &[[u64; NUM_HASHES]],
    threshold: f64,
) -> Vec<bool> {
    // Collect every banding candidate pair, then verify them in ascending
    // (i, j) order — the exact sweep order of the naive algorithm. Bucket
    // iteration order (a per-process `HashMap` artifact) therefore cannot
    // influence which member of a duplicate chain survives.
    let rows = NUM_HASHES / BANDS;
    let mut candidates: BTreeSet<(usize, usize)> = BTreeSet::new();
    for band in 0..BANDS {
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, sig) in sigs.iter().enumerate() {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            sig[band * rows..(band + 1) * rows].hash(&mut h);
            buckets.entry(h.finish()).or_default().push(i);
        }
        for bucket in buckets.values() {
            for (bi, &i) in bucket.iter().enumerate() {
                for &j in &bucket[bi + 1..] {
                    candidates.insert((i, j));
                }
            }
        }
    }
    let mut dead = vec![false; sets.len()];
    for (i, j) in candidates {
        if dead[i] || dead[j] {
            continue;
        }
        if jaccard(&sets[i], &sets[j]) >= threshold {
            dead[j] = true;
        }
    }
    dead
}

/// Reference O(n²) implementation used to validate the LSH path in tests
/// and benchmarks.
pub fn dedup_naive(pool: Vec<RawSample>, threshold: f64) -> Vec<RawSample> {
    let sets: Vec<HashSet<u64>> = pool.iter().map(|s| shingles(&s.source)).collect();
    let mut dead = vec![false; pool.len()];
    for i in 0..pool.len() {
        if dead[i] {
            continue;
        }
        for j in (i + 1)..pool.len() {
            if !dead[j] && jaccard(&sets[i], &sets[j]) >= threshold {
                dead[j] = true;
            }
        }
    }
    pool.into_iter().zip(dead).filter(|(_, d)| !*d).map(|(s, _)| s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_corpus::{Origin, TruthLabel};

    fn raw(id: u64, src: &str) -> RawSample {
        RawSample::new(id, src, "", Origin::Scraped, TruthLabel::Clean)
    }

    const M1: &str = "module a(input x1, input x2, input x3, output y1, output y2, output y3);\n  assign y1 = ~x1;\n  assign y2 = x1 & x2;\n  assign y3 = x2 | x3;\nendmodule";
    const M2: &str =
        "module b(input clk, output reg [3:0] q); always @(posedge clk) q <= q + 1; endmodule";

    #[test]
    fn jaccard_properties() {
        let a = shingles(M1);
        let b = shingles(M2);
        assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12, "reflexive");
        assert!((jaccard(&a, &b) - jaccard(&b, &a)).abs() < 1e-12, "symmetric");
        assert!(jaccard(&a, &b) < 0.5, "different designs are dissimilar");
    }

    #[test]
    fn exact_duplicates_removed_keeping_first() {
        let pool = vec![raw(0, M1), raw(1, M1), raw(2, M2), raw(3, M1)];
        let out = dedup(pool, 0.85);
        let ids: Vec<u64> = out.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn near_duplicates_removed() {
        let near = format!("// a slightly edited copy\n{M1}");
        let pool = vec![raw(0, M1), raw(1, &near)];
        let out = dedup(pool, 0.8);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 0);
    }

    #[test]
    fn distinct_files_survive() {
        let pool = vec![raw(0, M1), raw(1, M2)];
        assert_eq!(dedup(pool, 0.85).len(), 2);
    }

    #[test]
    fn lsh_matches_naive_on_random_pool() {
        let pool: Vec<RawSample> = (0..60)
            .map(|i| match i % 3 {
                0 => raw(i, M1),
                1 => raw(i, M2),
                _ => raw(
                    i,
                    &format!(
                        "module u{i}(input a, output y); assign y = a ^ 1'b{}; endmodule",
                        i % 2
                    ),
                ),
            })
            .collect();
        let naive: Vec<u64> = dedup_naive(pool.clone(), 0.95).into_iter().map(|s| s.id).collect();
        let fast: Vec<u64> = dedup(pool, 0.95).into_iter().map(|s| s.id).collect();
        assert_eq!(naive, fast);
    }

    #[test]
    fn threshold_one_keeps_only_exact_collisions() {
        let near = format!("{M1}\n// trailing comment");
        let pool = vec![raw(0, M1), raw(1, &near)];
        let out = dedup(pool, 1.0);
        assert_eq!(out.len(), 2, "not exactly identical shingle sets");
    }

    #[test]
    fn empty_pool_ok() {
        assert!(dedup(Vec::new(), 0.9).is_empty());
    }

    #[test]
    fn shingles_of_empty_source_is_empty() {
        assert!(shingles("").is_empty());
        assert!(!shingles("module m; endmodule").is_empty());
    }

    #[test]
    fn multibyte_sources_dedup_without_panicking() {
        // Regression: byte-indexed tokenization panicked on the first
        // non-ASCII char. A scraped file with a `// café` comment must
        // tokenize, and near-duplicates differing only in such comments
        // must still collapse.
        // Each non-ASCII char tokenizes alone, so keep the comment short
        // enough that the copy stays above the 0.8 Jaccard threshold.
        let near = format!("// café 配線\n{M1}");
        assert!(!shingles(&near).is_empty());
        assert!(jaccard(&shingles(M1), &shingles(&near)) >= 0.8, "fixture drifted");
        let pool = vec![raw(0, M1), raw(1, &near), raw(2, M2)];
        let out = dedup(pool, 0.8);
        let ids: Vec<u64> = out.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 2], "multibyte-comment near-copy removed, first kept");
    }

    #[test]
    fn multibyte_and_ascii_tokenization_agree_on_ascii() {
        // The char-aware rewrite must be a drop-in for ASCII sources —
        // identical shingles keep every pinned dedup outcome identical.
        let sets = shingles(M1);
        assert!((jaccard(&sets, &shingles(M1)) - 1.0).abs() < 1e-12);
        // A multibyte char is one token, not a byte sequence: the same
        // text with the char removed differs by exactly that token stream.
        let a = shingles("assign y = a; // é\nassign z = b;");
        let b = shingles("assign y = a; //\nassign z = b;");
        assert_ne!(a, b);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;

        /// A random Unicode source: every draw mixes plain ASCII
        /// Verilog-ish text with code points from the whole scalar-value
        /// range (multibyte letters, combining marks, emoji, exotic
        /// whitespace) so word/boundary handling sees every byte-length.
        fn arbitrary_unicode(seed: u64, len: usize) -> String {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut out = String::with_capacity(len * 2);
            for _ in 0..len {
                let c = match rng.random_range(0..4u32) {
                    0 => char::from(rng.random_range(0x20u32..0x7f) as u8),
                    1 => [' ', '\n', '\t', '\u{a0}', '\u{2028}', ';', '_', '$']
                        [rng.random_range(0..8usize)],
                    _ => loop {
                        let raw = rng.random_range(0u32..0x11_0000);
                        if let Some(c) = char::from_u32(raw) {
                            break c;
                        }
                    },
                };
                out.push(c);
            }
            out
        }

        /// Builds a pool mixing exact copies, lightly mutated copies, and
        /// fresh unrelated modules — the three regimes that exercise the
        /// banding recall, the exact verification, and the survivor sweep.
        fn random_pool(seed: u64, n: usize) -> Vec<RawSample> {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let bases = [M1, M2];
            (0..n as u64)
                .map(|i| {
                    let src = match rng.random_range(0..6u32) {
                        0 | 1 => bases[rng.random_range(0..bases.len())].to_owned(),
                        2 => format!(
                            "// copy {}\n{}",
                            rng.random_range(0..3u32),
                            bases[rng.random_range(0..bases.len())]
                        ),
                        3 => format!(
                            "{}\n// trailing note {}",
                            bases[rng.random_range(0..bases.len())],
                            rng.random_range(0..3u32)
                        ),
                        _ => format!(
                            "module g{i}(input [{}:0] a, input b, output y);\n  \
                             assign y = a[{}] ^ b;\nendmodule",
                            rng.random_range(1..8u32),
                            rng.random_range(0..2u32)
                        ),
                    };
                    raw(i, &src)
                })
                .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// MinHash + LSH dedup keeps exactly the samples the naive
            /// all-pairs Jaccard sweep keeps, at the paper's 0.85
            /// threshold, on pools of copies / near-copies / originals.
            #[test]
            fn lsh_dedup_matches_naive_all_pairs(
                seed in 0u64..5_000,
                n in 8usize..60,
            ) {
                let pool = random_pool(seed, n);
                let naive: Vec<u64> =
                    dedup_naive(pool.clone(), 0.85).into_iter().map(|s| s.id).collect();
                let fast: Vec<u64> =
                    dedup(pool, 0.85).into_iter().map(|s| s.id).collect();
                prop_assert_eq!(naive, fast);
            }

            /// `shingles` never panics, whatever Unicode lands in the
            /// pool — scraped corpora carry non-ASCII comments,
            /// identifiers, and the occasional binary-ish garbage, and a
            /// char-boundary panic here used to kill the whole pipeline.
            #[test]
            fn shingles_never_panics_on_arbitrary_unicode(
                seed in 0u64..100_000,
                len in 0usize..300,
            ) {
                let src = arbitrary_unicode(seed, len);
                let set = shingles(&src);
                prop_assert!((jaccard(&set, &set) - 1.0).abs() < 1e-12);
                // And the full dedup sweep over such sources stays sound.
                let pool = vec![raw(0, &src), raw(1, &src), raw(2, M1)];
                let out = dedup(pool, 0.85);
                prop_assert!(out.iter().any(|s| s.id == 0), "first copy survives");
                prop_assert!(!out.iter().any(|s| s.id == 1), "exact copy removed");
            }

            /// The survivor set is invariant under the executor's thread
            /// count — the parallel stage only computes per-sample
            /// signatures.
            #[test]
            fn dedup_is_thread_count_invariant(
                seed in 0u64..5_000,
                n in 8usize..40,
            ) {
                let pool = random_pool(seed, n);
                let one: Vec<u64> = dedup_with(pool.clone(), 0.85, &ExecConfig::new().threads(1))
                    .into_iter()
                    .map(|s| s.id)
                    .collect();
                let eight: Vec<u64> = dedup_with(pool, 0.85, &ExecConfig::new().threads(8))
                    .into_iter()
                    .map(|s| s.id)
                    .collect();
                prop_assert_eq!(one, eight);
            }
        }
    }
}
