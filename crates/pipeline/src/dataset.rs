//! The curated PyraNet dataset: layered storage, curriculum iteration,
//! JSONL persistence.

use crate::layers::Layer;
use crate::rank::Rank;
use pyranet_verilog::metrics::ComplexityTier;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One curated dataset entry with all PyraNet labels: rank, complexity
/// tier, layer, and compile details (paper contribution #1: "labels include
/// information such as the complexity level of the code, code rankings,
/// design descriptions, and compile details").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CuratedSample {
    /// Original pool id.
    pub id: u64,
    /// Verilog source.
    pub source: String,
    /// Natural-language description (the fine-tuning input).
    pub description: String,
    /// Quality rank (0–20).
    pub rank: Rank,
    /// Complexity tier (Basic/Intermediate/Advanced/Expert).
    pub tier: ComplexityTier,
    /// Assigned layer.
    pub layer: Layer,
    /// Compile detail: file compiled only with dependency issues.
    pub dependency_issue: bool,
}

/// The layered dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PyraNetDataset {
    samples: Vec<CuratedSample>,
}

impl PyraNetDataset {
    /// Creates an empty dataset.
    pub fn new() -> PyraNetDataset {
        PyraNetDataset::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, s: CuratedSample) {
        self.samples.push(s);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &CuratedSample> {
        self.samples.iter()
    }

    /// Samples in one layer.
    pub fn layer(&self, layer: Layer) -> impl Iterator<Item = &CuratedSample> {
        self.samples.iter().filter(move |s| s.layer == layer)
    }

    /// Per-layer counts, apex first (the Fig. 1-a pyramid).
    pub fn layer_counts(&self) -> [usize; 6] {
        let mut counts = [0usize; 6];
        for s in &self.samples {
            counts[s.layer.index() - 1] += 1;
        }
        counts
    }

    /// Per-(layer, tier) count.
    pub fn count_in(&self, layer: Layer, tier: ComplexityTier) -> usize {
        self.samples.iter().filter(|s| s.layer == layer && s.tier == tier).count()
    }

    /// The PyraNet curriculum order (paper §III-B.2): layers visited apex →
    /// base; inside each layer, complexity Basic → Intermediate → Advanced →
    /// Expert. Ties keep insertion order (stable).
    pub fn curriculum(&self) -> Vec<&CuratedSample> {
        let mut out: Vec<&CuratedSample> = self.samples.iter().collect();
        out.sort_by_key(|s| (s.layer, s.tier));
        out
    }

    /// Writes the dataset as JSON Lines and **flushes the writer** before
    /// returning, so buffered-writer callers get short-write and flush
    /// failures as errors instead of having `Drop` swallow them (a
    /// disk-full export must never report success).
    ///
    /// # Errors
    ///
    /// Propagates serialization, write, and flush errors.
    pub fn to_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        // One line buffer reused for every record: serialization appends
        // into it and the trailing newline rides along, so each sample
        // costs a single `write_all` and zero fresh allocations once the
        // buffer has grown to the largest record.
        let mut line = String::with_capacity(1024);
        for s in &self.samples {
            line.clear();
            serde_json::to_string_into(s, &mut line)?;
            line.push('\n');
            w.write_all(line.as_bytes())?;
        }
        w.flush()
    }

    /// Reads a dataset from JSON Lines. A `mut` reference can be passed for
    /// the reader.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; malformed lines report their 1-based line
    /// number (`line 37: ...`). [`crate::persist::load_dataset`] adds the
    /// file name on top when reading from a path.
    pub fn from_jsonl<R: BufRead>(r: R) -> std::io::Result<PyraNetDataset> {
        let mut ds = PyraNetDataset::new();
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            ds.push(parse_jsonl_line(&line).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("line {}: {e}", i + 1))
            })?);
        }
        Ok(ds)
    }
}

/// Parses one JSONL record. Callers attach position context (line number,
/// shard file name) to the raw serde error.
pub(crate) fn parse_jsonl_line(line: &str) -> Result<CuratedSample, serde_json::Error> {
    serde_json::from_str(line)
}

impl FromIterator<CuratedSample> for PyraNetDataset {
    fn from_iter<I: IntoIterator<Item = CuratedSample>>(iter: I) -> Self {
        PyraNetDataset { samples: iter.into_iter().collect() }
    }
}

impl Extend<CuratedSample> for PyraNetDataset {
    fn extend<I: IntoIterator<Item = CuratedSample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u64, rank: u8, tier: ComplexityTier, dep: bool) -> CuratedSample {
        let r = Rank::new(rank);
        CuratedSample {
            id,
            source: format!("module m{id}; endmodule"),
            description: format!("module {id}"),
            rank: r,
            tier,
            layer: Layer::assign(r, dep),
            dependency_issue: dep,
        }
    }

    #[test]
    fn layer_counts_partition() {
        let ds: PyraNetDataset = vec![
            sample(0, 20, ComplexityTier::Basic, false),
            sample(1, 17, ComplexityTier::Basic, false),
            sample(2, 12, ComplexityTier::Expert, false),
            sample(3, 7, ComplexityTier::Basic, false),
            sample(4, 2, ComplexityTier::Basic, false),
            sample(5, 20, ComplexityTier::Basic, true),
        ]
        .into_iter()
        .collect();
        assert_eq!(ds.layer_counts(), [1, 1, 1, 1, 1, 1]);
        assert_eq!(ds.layer_counts().iter().sum::<usize>(), ds.len());
    }

    #[test]
    fn curriculum_orders_layers_then_tiers() {
        let ds: PyraNetDataset = vec![
            sample(0, 12, ComplexityTier::Expert, false),
            sample(1, 20, ComplexityTier::Advanced, false),
            sample(2, 20, ComplexityTier::Basic, false),
            sample(3, 17, ComplexityTier::Basic, false),
            sample(4, 12, ComplexityTier::Basic, false),
        ]
        .into_iter()
        .collect();
        let order: Vec<u64> = ds.curriculum().iter().map(|s| s.id).collect();
        assert_eq!(order, vec![2, 1, 3, 4, 0]);
    }

    #[test]
    fn curriculum_is_stable_within_groups() {
        let ds: PyraNetDataset = vec![
            sample(10, 20, ComplexityTier::Basic, false),
            sample(11, 20, ComplexityTier::Basic, false),
            sample(12, 20, ComplexityTier::Basic, false),
        ]
        .into_iter()
        .collect();
        let order: Vec<u64> = ds.curriculum().iter().map(|s| s.id).collect();
        assert_eq!(order, vec![10, 11, 12]);
    }

    #[test]
    fn jsonl_round_trip() {
        let ds: PyraNetDataset = vec![
            sample(0, 20, ComplexityTier::Basic, false),
            sample(1, 3, ComplexityTier::Expert, true),
        ]
        .into_iter()
        .collect();
        let mut buf = Vec::new();
        ds.to_jsonl(&mut buf).unwrap();
        let back = PyraNetDataset::from_jsonl(&buf[..]).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let ds = PyraNetDataset::from_jsonl("\n\n".as_bytes()).unwrap();
        assert!(ds.is_empty());
    }

    #[test]
    fn jsonl_parse_errors_carry_the_line_number() {
        let ds: PyraNetDataset =
            vec![sample(0, 20, ComplexityTier::Basic, false)].into_iter().collect();
        let mut buf = Vec::new();
        ds.to_jsonl(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("\n{\"corrupted\": true}\n");
        let err = PyraNetDataset::from_jsonl(text.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // The record itself is line 1, a blank line is 2, the bad row is 3.
        assert!(err.to_string().starts_with("line 3:"), "{err}");
    }

    /// `Write` impl that accepts writes but fails on flush — the shape of a
    /// deferred short-write (disk full, quota) that `BufWriter`'s `Drop`
    /// would swallow.
    struct FlushFails;

    impl Write for FlushFails {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::new(std::io::ErrorKind::StorageFull, "no space left on device"))
        }
    }

    /// `Write` impl with a byte budget: writes past it fail, simulating a
    /// filesystem that runs out of space mid-export.
    struct RunsDry {
        remaining: usize,
    }

    impl Write for RunsDry {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.len() > self.remaining {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::StorageFull,
                    "no space left on device",
                ));
            }
            self.remaining -= buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn to_jsonl_surfaces_flush_failures() {
        let ds: PyraNetDataset =
            vec![sample(0, 20, ComplexityTier::Basic, false)].into_iter().collect();
        let err = ds.to_jsonl(FlushFails).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        // The exact failure mode of the original bug: a BufWriter whose
        // backing device fails at flush time. `to_jsonl` must flush
        // explicitly and propagate, not let `Drop` discard the error.
        let err = ds.to_jsonl(std::io::BufWriter::new(FlushFails)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
    }

    #[test]
    fn to_jsonl_surfaces_short_writes() {
        let ds: PyraNetDataset =
            (0..50).map(|i| sample(i, 20, ComplexityTier::Basic, false)).collect();
        let err = ds.to_jsonl(RunsDry { remaining: 100 }).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        let err = ds
            .to_jsonl(std::io::BufWriter::with_capacity(64, RunsDry { remaining: 100 }))
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
    }

    #[test]
    fn layer_filter_iterates_only_that_layer() {
        let ds: PyraNetDataset = vec![
            sample(0, 20, ComplexityTier::Basic, false),
            sample(1, 17, ComplexityTier::Basic, false),
        ]
        .into_iter()
        .collect();
        assert_eq!(ds.layer(Layer::L1).count(), 1);
        assert_eq!(ds.layer(Layer::L2).count(), 1);
        assert_eq!(ds.layer(Layer::L3).count(), 0);
    }
}
