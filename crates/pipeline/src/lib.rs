//! # pyranet-pipeline
//!
//! The PyraNet curation pipeline (paper §III-A): filters a noisy Verilog
//! pool into the six-layer quality pyramid.
//!
//! Stage order follows the paper exactly — cheap filters first, the
//! (computationally heaviest) syntax check last:
//!
//! 1. **Empty/broken files** ([`filter::filter_broken`]) — encoding
//!    failures and empty bodies are discarded.
//! 2. **Module declaration** ([`filter::filter_no_module`]) — files with no
//!    `module` keyword are discarded.
//! 3. **Deduplication** ([`dedup`]) — Jaccard similarity over token sets,
//!    accelerated with MinHash + LSH banding; pairs above the threshold are
//!    collapsed to the earliest representative.
//! 4. **Syntax check** ([`pyranet_verilog::check_source`]) — the Icarus
//!    substitute; syntax errors are discarded, dependency issues survive
//!    into Layer 6.
//!
//! Survivors are then **ranked 0–20** ([`rank`]) by the deterministic
//! style/efficiency judge, **complexity-labelled** ([`pyranet_verilog::metrics`])
//! into Basic/Intermediate/Advanced/Expert, and **organised into six
//! layers** ([`layers`]) with the paper's loss weights. [`dataset`] holds
//! the result, with curriculum-ordered iteration and JSONL persistence;
//! [`persist`] adds sharded, manifest-indexed, checksum-verified exports.
//! [`erroneous`] implements the Table IV label-shuffling ablation.
//!
//! # Example
//!
//! ```
//! use pyranet_corpus::CorpusBuilder;
//! use pyranet_pipeline::Pipeline;
//!
//! let pool = CorpusBuilder::new(1).scraped_files(200).llm_generation(false).build();
//! let outcome = Pipeline::new().run(pool.samples);
//! assert!(outcome.dataset.len() > 0);
//! assert!(outcome.funnel.collected >= outcome.funnel.curated);
//! ```

pub mod dataset;
pub mod dedup;
pub mod erroneous;
pub mod filter;
pub mod incremental;
pub mod layers;
pub mod persist;
pub mod rank;
pub mod stats;

pub use dataset::{CuratedSample, PyraNetDataset};
pub use incremental::StageFingerprints;
pub use layers::Layer;
pub use persist::{ExportMeta, ShardManifest, ShardSpec, ShardStream};
pub use pyranet_cache::StageProvenance;
pub use rank::{rank_sample, Rank, RANK_JUDGE_VERSION};
pub use stats::Funnel;

use incremental::CurationArtifact;
use pyranet_cache::{content_hash, ArtifactStore, CacheManifest, Lookup, StageKey};
use pyranet_corpus::RawSample;
use pyranet_exec::{par_map, ExecConfig};
use pyranet_verilog::metrics::ComplexityTier;
use pyranet_verilog::{check_file, parse, SimDesign, SimMode, SourceFile, SyntaxVerdict};
use std::path::PathBuf;
use std::time::Duration;

/// Configuration for a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Jaccard similarity threshold above which two files are duplicates.
    pub jaccard_threshold: f64,
    /// Worker threads for the parallel stages (dedup signatures and the
    /// syntax/rank stage); `0` means auto (`PYRANET_THREADS`, then
    /// available parallelism). Outputs are identical at any value.
    pub threads: usize,
    /// Opt-in simulation check: when set, self-contained survivors (no
    /// dependency issue) must also build and settle in the simulator under
    /// the given backend; failures land in `Funnel::rejected_sim`. `None`
    /// (the default) skips the stage and reproduces the historical curated
    /// output byte-for-byte.
    pub sim_check: Option<SimMode>,
    /// Opt-in incremental cache root ([`Pipeline::cache_dir`]). When set,
    /// per-sample stage verdicts are read from / written to a
    /// content-addressed store under this directory, so a rebuild pays
    /// recompute only for samples whose content (or whose stage's config)
    /// changed. `None` (the default) runs every stage from scratch. The
    /// curated output is byte-identical either way.
    pub cache_dir: Option<PathBuf>,
}

impl Pipeline {
    /// Pipeline with the default 0.85 Jaccard threshold and auto threads.
    pub fn new() -> Pipeline {
        Pipeline { jaccard_threshold: 0.85, threads: 0, sim_check: None, cache_dir: None }
    }

    /// Sets the dedup threshold.
    pub fn jaccard_threshold(mut self, t: f64) -> Pipeline {
        self.jaccard_threshold = t;
        self
    }

    /// Sets the worker-thread count (`0` = auto).
    pub fn threads(mut self, threads: usize) -> Pipeline {
        self.threads = threads;
        self
    }

    /// Enables the opt-in simulation check under `mode`.
    pub fn sim_check(mut self, mode: SimMode) -> Pipeline {
        self.sim_check = Some(mode);
        self
    }

    /// Enables the incremental artifact cache rooted at `dir` (created on
    /// first use). An unopenable store degrades to an uncached run
    /// (counted in `cache.open_errors`) — caching is a performance knob,
    /// never a correctness gate.
    pub fn cache_dir(mut self, dir: PathBuf) -> Pipeline {
        self.cache_dir = Some(dir);
        self
    }

    fn exec_config(&self) -> ExecConfig {
        ExecConfig::new().threads(self.threads)
    }

    /// Runs the full curation pipeline over a raw pool.
    pub fn run(&self, pool: Vec<RawSample>) -> PipelineOutcome {
        self.run_timed(pool).0
    }

    /// Runs the pipeline, additionally reporting per-stage wall time.
    ///
    /// Every stage runs under a `pyranet_obs` span (`pipeline.stage.*`)
    /// and the funnel counts are mirrored into `pipeline.funnel.*`
    /// counters — observational only, the curated output is byte-for-byte
    /// what it was without instrumentation.
    pub fn run_timed(&self, pool: Vec<RawSample>) -> (PipelineOutcome, StageTimings) {
        let obs = pyranet_obs::global();
        let run_span = obs.span("pipeline.run");
        let exec = self.exec_config();
        let mut funnel = Funnel { collected: pool.len(), ..Funnel::default() };
        let mut timings = StageTimings::default();
        let fingerprints = StageFingerprints::derive(self.jaccard_threshold, self.sim_check);

        // Open the incremental store if requested. Failure degrades to an
        // uncached run — caching can only change speed, never output.
        let store: Option<ArtifactStore> = self.cache_dir.as_deref().and_then(|dir| {
            ArtifactStore::open(dir).map_err(|_| obs.counter("cache.open_errors").inc()).ok()
        });
        let store = store.as_ref();

        // Stage 1: empty/broken.
        let span = obs.span("pipeline.stage.broken");
        let (alive, rejected) = match store {
            Some(store) => incremental::filter_stage_cached(
                store,
                incremental::STAGE_BROKEN,
                fingerprints.broken,
                pool,
                &exec,
                filter::is_broken,
            ),
            None => filter::filter_broken(pool),
        };
        funnel.rejected_broken = rejected;
        timings.broken = span.stop();

        // Stage 2: module declaration.
        let span = obs.span("pipeline.stage.no_module");
        let (alive, rejected) = match store {
            Some(store) => incremental::filter_stage_cached(
                store,
                incremental::STAGE_NO_MODULE,
                fingerprints.no_module,
                alive,
                &exec,
                |src| !filter::has_module_decl(src),
            ),
            None => filter::filter_no_module(alive),
        };
        funnel.rejected_no_module = rejected;
        timings.no_module = span.stop();

        // Stage 3: dedup (MinHash signatures computed in parallel, cached
        // per sample; the cross-sample LSH join always re-runs — see
        // `incremental` for why it cannot be cached per sample).
        let span = obs.span("pipeline.stage.dedup");
        let before = alive.len();
        let alive = match store {
            Some(store) => incremental::dedup_cached(
                store,
                fingerprints.dedup_sig,
                alive,
                self.jaccard_threshold,
                &exec,
            ),
            None => dedup::dedup_with(alive, self.jaccard_threshold, &exec),
        };
        funnel.rejected_duplicates = before - alive.len();
        timings.dedup = span.stop();

        // Stage 4: syntax check + rank + complexity, one parse per
        // survivor, fanned out across the executor. Each sample's curation
        // is a pure function of the sample, so par_map's determinism
        // contract makes the outcome thread-count-independent — with or
        // without the cache, whose lookups are content-keyed.
        let span = obs.span("pipeline.stage.syntax_rank");
        timings.syntax_in = alive.len();
        let sim_check = self.sim_check;
        let syntax_fp = fingerprints.syntax_rank;
        let curated = par_map(&exec, alive, move |s| {
            let Some(store) = store else { return curate_one(s, sim_check) };
            let key =
                StageKey::new(incremental::STAGE_SYNTAX_RANK, content_hash(&s.source), syntax_fp);
            match store.get::<CurationArtifact>(&key) {
                Lookup::Hit(CurationArtifact::Syntax) => Curation::Syntax,
                Lookup::Hit(CurationArtifact::Sim) => Curation::Sim,
                Lookup::Hit(CurationArtifact::Keep { rank, tier, layer, dependency_issue }) => {
                    Curation::Keep(Box::new(incremental::curated_from_artifact(
                        s,
                        rank,
                        tier,
                        layer,
                        dependency_issue,
                    )))
                }
                Lookup::Miss | Lookup::Invalid => {
                    let outcome = curate_one(s, sim_check);
                    let artifact = match &outcome {
                        Curation::Syntax => CurationArtifact::Syntax,
                        Curation::Sim => CurationArtifact::Sim,
                        Curation::Keep(sample) => CurationArtifact::Keep {
                            rank: sample.rank,
                            tier: sample.tier,
                            layer: sample.layer,
                            dependency_issue: sample.dependency_issue,
                        },
                    };
                    store.put(&key, &artifact).ok();
                    outcome
                }
            }
        });
        let mut dataset = PyraNetDataset::default();
        for outcome in curated {
            match outcome {
                Curation::Keep(sample) => dataset.push(*sample),
                Curation::Syntax => funnel.rejected_syntax += 1,
                Curation::Sim => funnel.rejected_sim += 1,
            }
        }
        timings.syntax_rank = span.stop();

        funnel.curated = dataset.len();
        assert!(
            funnel.is_consistent(),
            "funnel lost samples: {} collected vs {} accounted",
            funnel.collected,
            funnel.rejected_broken
                + funnel.rejected_no_module
                + funnel.rejected_duplicates
                + funnel.rejected_syntax
                + funnel.rejected_sim
                + funnel.curated
        );
        for (name, count) in [
            ("collected", funnel.collected),
            ("rejected_broken", funnel.rejected_broken),
            ("rejected_no_module", funnel.rejected_no_module),
            ("rejected_duplicates", funnel.rejected_duplicates),
            ("rejected_syntax", funnel.rejected_syntax),
            ("rejected_sim", funnel.rejected_sim),
            ("curated", funnel.curated),
        ] {
            obs.counter(&format!("pipeline.funnel.{name}")).add(count as u64);
        }
        // Record stage provenance. With a live store, also persist it at
        // the cache root so tools can see what configuration the store
        // holds (advisory — keys self-invalidate regardless).
        let provenance = fingerprints.provenance();
        if let Some(store) = store {
            CacheManifest::new(provenance.clone()).save(store.root()).ok();
        }
        drop(run_span);
        (PipelineOutcome { dataset, funnel, provenance }, timings)
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

/// Per-sample outcome of the curation stage (keeps the funnel's rejection
/// buckets distinct through the parallel fan-out).
enum Curation {
    Keep(Box<CuratedSample>),
    Syntax,
    Sim,
}

/// Curates one dedup survivor from scratch: parse, syntax check, rank,
/// complexity, and the opt-in sim check. A pure function of the sample's
/// content and the sim mode — which is what makes the verdict cacheable.
fn curate_one(s: RawSample, sim_check: Option<SimMode>) -> Curation {
    let file = match parse(&s.source) {
        Ok(f) => f,
        Err(_) => return Curation::Syntax,
    };
    match check_file(&file) {
        SyntaxVerdict::SyntaxError { .. } => Curation::Syntax,
        verdict => {
            let sample = curate_survivor(s, &verdict, &file);
            // Opt-in: self-contained survivors must also build and
            // settle in the simulator. Dependency-issue samples are
            // exempt (their missing modules cannot elaborate) —
            // they keep their Layer-6 demotion instead.
            if let Some(mode) = sim_check {
                if !sample.dependency_issue && !simulates(&file, mode) {
                    return Curation::Sim;
                }
            }
            Curation::Keep(Box::new(sample))
        }
    }
}

/// True when the file's first module elaborates, builds and settles under
/// `mode` (the same front end the eval testbench uses).
fn simulates(file: &SourceFile, mode: SimMode) -> bool {
    let Some(top) = file.modules.first() else { return false };
    match SimDesign::from_file(file, &top.name, mode) {
        Ok(design) => design.instantiate().is_ok(),
        Err(_) => false,
    }
}

/// Builds the curated record for a sample that survived the syntax check,
/// reusing the parse produced by the check itself.
fn curate_survivor(s: RawSample, verdict: &SyntaxVerdict, file: &SourceFile) -> CuratedSample {
    let dependency_issue = matches!(verdict, SyntaxVerdict::DependencyIssue { .. });
    // `check_file` rejects empty files, so a survivor always has a module.
    let (rank, tier) = match file.modules.first() {
        Some(module) => {
            let rank = rank_sample(module, &s.source);
            let tier = ComplexityTier::classify(pyranet_verilog::metrics::measure(module).score());
            (rank, tier)
        }
        None => (Rank::new(0), ComplexityTier::Basic),
    };
    let layer = Layer::assign(rank, dependency_issue);
    CuratedSample {
        id: s.id,
        source: s.source,
        description: s.description,
        rank,
        tier,
        layer,
        dependency_issue,
    }
}

/// The result of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The curated, layered dataset.
    pub dataset: PyraNetDataset,
    /// Per-stage rejection statistics (the §III-A.5 funnel).
    pub funnel: Funnel,
    /// Stage provenance for this run's configuration (stage name, artifact
    /// version, config fingerprint) — embeddable into the shard manifest
    /// via [`ExportMeta`].
    pub provenance: Vec<StageProvenance>,
}

/// Wall-clock time spent in each pipeline stage (for the bench harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Stage 1: empty/broken filter.
    pub broken: Duration,
    /// Stage 2: module-declaration filter.
    pub no_module: Duration,
    /// Stage 3: dedup (signatures + LSH + verification).
    pub dedup: Duration,
    /// Stage 4: parse + check + rank + complexity.
    pub syntax_rank: Duration,
    /// Samples entering stage 4 (for samples/sec reporting).
    pub syntax_in: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyranet_corpus::{CorpusBuilder, TruthLabel};

    #[test]
    fn pipeline_recovers_truth_labels() {
        let pool = CorpusBuilder::new(3).scraped_files(400).build();
        let truth: std::collections::HashMap<u64, TruthLabel> =
            pool.samples.iter().map(|s| (s.id, s.truth)).collect();
        let outcome = Pipeline::new().run(pool.samples);
        for s in outcome.dataset.iter() {
            match truth[&s.id] {
                TruthLabel::SyntaxBroken => panic!("syntax-broken sample {} survived", s.id),
                TruthLabel::EmptyOrBinary => panic!("broken file {} survived", s.id),
                TruthLabel::DependencyBroken => {
                    assert!(s.dependency_issue, "{}", s.id);
                    assert_eq!(s.layer, Layer::L6);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn sim_check_rejects_unsimulatable_survivors() {
        use pyranet_corpus::{Origin, RawSample};
        // Syntactically clean, but combinationally oscillating: only the
        // opt-in sim stage can catch it.
        let osc = "module osc(output y); wire n; assign n = ~n; assign y = n; endmodule";
        let good = "module ok(input a, output y); assign y = ~a; endmodule";
        let pool = vec![
            RawSample::new(1, osc.to_owned(), "", Origin::Scraped, TruthLabel::Clean),
            RawSample::new(2, good.to_owned(), "", Origin::Scraped, TruthLabel::Clean),
        ];
        for mode in [pyranet_verilog::SimMode::Compiled, pyranet_verilog::SimMode::Reference] {
            let outcome = Pipeline::new().sim_check(mode).run(pool.clone());
            assert_eq!(outcome.funnel.rejected_sim, 1, "{mode:?}");
            assert_eq!(outcome.funnel.curated, 1, "{mode:?}");
            assert!(outcome.funnel.is_consistent(), "{mode:?}");
            assert!(outcome.dataset.iter().all(|s| s.id == 2), "{mode:?}");
        }
        // Default-off: the oscillator survives, as it always has.
        let outcome = Pipeline::new().run(pool);
        assert_eq!(outcome.funnel.rejected_sim, 0);
        assert_eq!(outcome.funnel.curated, 2);
    }

    #[test]
    fn funnel_conserves_samples() {
        let pool = CorpusBuilder::new(4).scraped_files(300).build();
        let n = pool.samples.len();
        let outcome = Pipeline::new().run(pool.samples);
        let f = &outcome.funnel;
        assert_eq!(f.collected, n, "collected matches input");
        assert_eq!(
            f.rejected_broken
                + f.rejected_no_module
                + f.rejected_duplicates
                + f.rejected_syntax
                + f.curated,
            n,
            "every sample is accounted for exactly once"
        );
    }

    #[test]
    fn clean_samples_rank_higher_than_sloppy() {
        let pool = CorpusBuilder::new(5).scraped_files(600).build();
        let truth: std::collections::HashMap<u64, TruthLabel> =
            pool.samples.iter().map(|s| (s.id, s.truth)).collect();
        let outcome = Pipeline::new().run(pool.samples);
        let mut clean = (0.0, 0.0);
        let mut sloppy = (0.0, 0.0);
        for s in outcome.dataset.iter() {
            match truth[&s.id] {
                TruthLabel::Clean => {
                    clean.0 += f64::from(s.rank.value());
                    clean.1 += 1.0;
                }
                TruthLabel::Sloppy => {
                    sloppy.0 += f64::from(s.rank.value());
                    sloppy.1 += 1.0;
                }
                _ => {}
            }
        }
        assert!(clean.1 > 0.0 && sloppy.1 > 0.0);
        let clean_avg = clean.0 / clean.1;
        let sloppy_avg = sloppy.0 / sloppy.1;
        assert!(
            clean_avg > sloppy_avg + 2.0,
            "clean avg {clean_avg:.1} vs sloppy avg {sloppy_avg:.1}"
        );
    }
}
