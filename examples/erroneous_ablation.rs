//! The dataset-quality-verification ablation (paper §IV-E, Table IV):
//! shuffle codes/descriptions/rankings across rows, fine-tune on the
//! corrupted dataset, and watch the scores collapse relative to the
//! correctly-labelled dataset.
//!
//! ```sh
//! cargo run -p pyranet --release --example erroneous_ablation
//! ```

use pyranet::eval::EvalOptions;
use pyranet::experiment::{evaluate_model, Recipe};
use pyranet::pipeline::erroneous::{description_match_fraction, shuffle_labels};
use pyranet::train::TrainConfig;
use pyranet::{BuildOptions, Experiment, ExperimentOptions, ModelConfig, PyraNetBuilder};
use rand::SeedableRng;

fn main() {
    let built = PyraNetBuilder::new(BuildOptions {
        scraped_files: 600,
        seed: 13,
        ..BuildOptions::default()
    })
    .build();

    // Show what the corruption actually does to the dataset.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let shuffled = shuffle_labels(&built.dataset, &mut rng);
    println!(
        "after shuffling, only {:.1}% of rows keep their own description",
        100.0 * description_match_fraction(&built.dataset, &shuffled)
    );

    let experiment = Experiment::new(built.dataset);
    let opts = ExperimentOptions {
        train: TrainConfig {
            epochs: 2,
            max_examples_per_phase: Some(100),
            ..TrainConfig::default()
        },
        eval: EvalOptions { samples_per_problem: 5, max_new_tokens: 120, ..EvalOptions::default() },
    };
    let base = experiment.pretrain_base(&ModelConfig::codellama_7b(), &opts);

    println!("\nTABLE IV (miniature)");
    println!("{:<44} {:>7} {:>7} {:>7} {:>7}", "run", "M p@1", "M p@10", "H p@1", "H p@10");
    for (recipe, label) in [
        (Recipe::Erroneous, "CodeLlama-7B with erroneous dataset"),
        (Recipe::PyraNetDataset, "CodeLlama-7B with correct dataset"),
    ] {
        let run = experiment.run(&base, recipe, &opts);
        let e = evaluate_model(&run.model, &experiment.tokenizer, &opts.eval);
        println!(
            "{:<44} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
            label,
            e.machine.pass_at(1),
            e.machine.pass_at(10),
            e.human.pass_at(1),
            e.human.pass_at(10),
        );
    }
    println!("\nexpected shape (paper): the erroneous run scores far below the correct one.");
}
