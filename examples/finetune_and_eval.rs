//! Fine-tune a base model three ways (baseline / PyraNet-Dataset /
//! PyraNet-Architecture) and score each on the VerilogEval substitute —
//! a miniature of the paper's Table I for one base model.
//!
//! ```sh
//! cargo run -p pyranet --release --example finetune_and_eval
//! ```

use pyranet::eval::EvalOptions;
use pyranet::experiment::{evaluate_model, Recipe};
use pyranet::train::TrainConfig;
use pyranet::{BuildOptions, Experiment, ExperimentOptions, ModelConfig, PyraNetBuilder};

fn main() {
    println!("building dataset …");
    let built = PyraNetBuilder::new(BuildOptions {
        scraped_files: 800,
        seed: 11,
        ..BuildOptions::default()
    })
    .build();
    println!("curated {} samples, layers {:?}", built.dataset.len(), built.dataset.layer_counts());

    let experiment = Experiment::new(built.dataset);
    let opts = ExperimentOptions {
        train: TrainConfig {
            epochs: 2,
            max_examples_per_phase: Some(100),
            ..TrainConfig::default()
        },
        eval: EvalOptions { samples_per_problem: 5, max_new_tokens: 120, ..EvalOptions::default() },
    };

    let base_cfg = ModelConfig::codellama_7b();
    println!("pretraining base {} …", base_cfg.name);
    let base = experiment.pretrain_base(&base_cfg, &opts);

    println!("{:<48} {:>7} {:>7} {:>7} {:>7}", "model", "M p@1", "M p@5", "H p@1", "H p@5");
    for recipe in [Recipe::Baseline, Recipe::PyraNetDataset, Recipe::PyraNetArchitecture] {
        let run = experiment.run(&base, recipe, &opts);
        let evals = evaluate_model(&run.model, &experiment.tokenizer, &opts.eval);
        println!(
            "{:<48} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
            run.name,
            evals.machine.pass_at(1),
            evals.machine.pass_at(5),
            evals.human.pass_at(1),
            evals.human.pass_at(5),
        );
        if recipe == Recipe::PyraNetArchitecture {
            println!("\n{}", run.report.render_schedule());
        }
    }
}
