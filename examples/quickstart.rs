//! Quickstart: build a PyraNet dataset end to end and look inside it.
//!
//! ```sh
//! cargo run -p pyranet --release --example quickstart
//! ```

use pyranet::{BuildOptions, Layer, PyraNetBuilder};

fn main() {
    // 1. Synthesize a noisy "scraped" pool and curate it (filters, Jaccard
    //    dedup, syntax check, ranking, complexity labels, six layers).
    let built = PyraNetBuilder::new(BuildOptions {
        scraped_files: 600,
        seed: 42,
        ..BuildOptions::default()
    })
    .build();

    println!("== curation funnel ==");
    println!("{}", built.funnel.render());

    // 2. The six-layer pyramid (Fig. 1-a).
    println!("\n== layer pyramid ==");
    let counts = built.dataset.layer_counts();
    for layer in Layer::ALL {
        println!(
            "  {layer}: {:>5} samples, loss weight {:.1}",
            counts[layer.index() - 1],
            layer.loss_weight()
        );
    }

    // 3. Peek at the apex: the best-ranked samples.
    println!("\n== a Layer 1 sample ==");
    if let Some(best) = built.dataset.layer(Layer::L1).next() {
        println!("rank: {}", best.rank);
        println!("tier: {}", best.tier);
        println!("description: {}", best.description);
        println!("--- code ---\n{}", best.source);
    } else {
        println!("(no rank-20 sample in this small pool — rerun with more files)");
    }

    // 4. The curriculum order fine-tuning would follow.
    println!("== first five curriculum entries ==");
    for s in built.dataset.curriculum().iter().take(5) {
        println!("  {} / {} (rank {})", s.layer, s.tier, s.rank.value());
    }
}
