//! Dataset curation in detail: run each pipeline stage by hand, inspect
//! the rejects, and export the curated dataset as JSON Lines — the format
//! the released PyraNet dataset uses on HuggingFace.
//!
//! ```sh
//! cargo run -p pyranet --release --example dataset_curation
//! ```

use pyranet::corpus::CorpusBuilder;
use pyranet::pipeline::{dedup, filter, rank, Pipeline};
use pyranet::verilog::{check_source, SyntaxVerdict};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // The raw pool: a 1:2000-scale stand-in for the paper's 2.4 M scraped
    // files + 150 k LLM generations.
    let pool = CorpusBuilder::new(7).scraped_files(800).build();
    println!("pooled {} raw files", pool.samples.len());

    // Stage 1: empty/broken files (encoding errors, no content).
    let (alive, rejected) = filter::filter_broken(pool.samples);
    println!("stage 1 (empty/broken):     -{rejected}");

    // Stage 2: files without a module declaration.
    let (alive, rejected) = filter::filter_no_module(alive);
    println!("stage 2 (module decl):      -{rejected}");

    // Stage 3: Jaccard deduplication (MinHash + LSH under the hood).
    let before = alive.len();
    let alive = dedup::dedup(alive, 0.85);
    println!("stage 3 (jaccard dedup):    -{}", before - alive.len());

    // Stage 4: the syntax check — run last because it is the most
    // expensive, exactly as the paper orders the stages.
    let mut clean = 0;
    let mut dependency = 0;
    let mut syntax = 0;
    for s in &alive {
        match check_source(&s.source) {
            SyntaxVerdict::Clean => clean += 1,
            SyntaxVerdict::DependencyIssue { .. } => dependency += 1,
            SyntaxVerdict::SyntaxError { .. } => syntax += 1,
        }
    }
    println!("stage 4 (icarus-substitute): -{syntax} syntax errors");
    println!("survivors: {clean} clean + {dependency} with dependency issues");

    // Rank one survivor the way the judge does (Fig. 3).
    if let Some(s) = alive.iter().find(|s| check_source(&s.source).is_clean()) {
        let module = pyranet::verilog::parse_module(&s.source)?;
        let r = rank::rank_sample(&module, &s.source);
        println!("\nexample ranking — {}:", rank::render_response(r));
        println!("{}", s.source.lines().take(4).collect::<Vec<_>>().join("\n"));
    }

    // Or just run the whole pipeline in one call and export it.
    let pool = CorpusBuilder::new(7).scraped_files(800).build();
    let outcome = Pipeline::new().run(pool.samples);
    println!("\n== full pipeline ==\n{}", outcome.funnel.render());

    let path = std::env::temp_dir().join("pyranet_dataset.jsonl");
    let file = std::fs::File::create(&path)?;
    outcome.dataset.to_jsonl(std::io::BufWriter::new(file))?;
    println!("\nwrote {} curated samples to {}", outcome.dataset.len(), path.display());

    // Round-trip to prove the artifact is self-contained.
    let reread =
        pyranet::PyraNetDataset::from_jsonl(std::io::BufReader::new(std::fs::File::open(&path)?))?;
    assert_eq!(reread.len(), outcome.dataset.len());
    println!("re-read OK ({} samples)", reread.len());
    Ok(())
}
